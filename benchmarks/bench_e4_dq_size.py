"""E4 — deferred-queue sizing.

The DQ holds only the *dependence slice* of outstanding misses, so a
modest DQ already covers a large effective window; a starved DQ forces
scout fallbacks.  Expected: steep gains up to a few tens of entries,
then diminishing returns.
"""

import dataclasses

from common import bench_hierarchy, run, save_table, scaled
from repro.config import inorder_machine, sst_machine
from repro.stats.report import Table
from repro.workloads import hash_join

DQ_SIZES = (4, 8, 16, 32, 64, 128)


def experiment():
    program = hash_join(table_words=scaled(1 << 16), probes=scaled(3000))
    hierarchy = bench_hierarchy()
    base = run(inorder_machine(hierarchy), program)
    table = Table(
        "E4: SST speedup and scout fallbacks vs DQ size",
        ["dq_size", "speedup", "scout sessions", "mean DQ occupancy"],
    )
    curve = []
    for dq_size in DQ_SIZES:
        machine = sst_machine(hierarchy, dq_size=dq_size)
        machine = dataclasses.replace(machine, name=f"sst-dq{dq_size}")
        result = run(machine, program)
        stats = result.extra["sst"]
        speedup = result.speedup_over(base)
        curve.append(speedup)
        table.add_row(
            dq_size,
            f"{speedup:.2f}x",
            stats.total_scout_sessions,
            round(result.extra["dq_occupancy"].mean, 1),
        )
    return table, curve


def test_e4_dq_size(benchmark):
    table, curve = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e4_dq_size", table)
    benchmark.extra_info["speedups"] = [round(s, 2) for s in curve]
    assert curve[-1] > curve[0] * 1.3  # small DQ clearly starves
    # Diminishing returns at the top end.
    assert curve[-1] <= curve[-2] * 1.25
