"""Pytest-benchmark adapter for E4 — the experiment itself lives in
:mod:`repro.experiments.e04_dq_size`.

Run it standalone (``python benchmarks/bench_e4_dq_size.py``), through
pytest-benchmark (``pytest benchmarks/bench_e4_dq_size.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e4_dq_size = make_bench_test("e4")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e4", "--echo", *sys.argv[1:]]))
