"""Pytest-benchmark adapter for E18 — the experiment itself lives in
:mod:`repro.experiments.e18_core_threading`.

Run it standalone (``python benchmarks/bench_e18_core_threading.py``), through
pytest-benchmark (``pytest benchmarks/bench_e18_core_threading.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e18_core_threading = make_bench_test("e18")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e18", "--echo", *sys.argv[1:]]))
