"""E18 — two hardware strands per core: two threads, or one SST thread?

ROCK gives each core two hardware strands.  Software can use them as
two application threads (throughput mode: modelled as two width-1
contexts sharing the core's L1/TLB and issue capacity), or dedicate
both to one thread as its ahead+replay pair (SST mode: one 2-wide SST
core).  This experiment runs both on the DB probe workload.

Expected: dedicating both strands to one thread wins per-thread
latency by construction; the interesting result is that on miss-bound
work it wins *throughput* too — two in-order threads overlap only each
other's stalls (memory-level parallelism ≈ 2) while one SST thread
overlaps tens of its own misses.  Threading only catches up when each
thread is individually compute-bound.  This asymmetry is why using the
second strand for SST, not just SMT, was worth silicon.
"""

from common import bench_hierarchy, run, save_table, scaled
from repro.cmp import Multicore
from repro.config import SSTConfig, sst_machine
from repro.stats.report import Table
from repro.workloads import hash_join


def _program(seed: int):
    return hash_join(table_words=scaled(1 << 14), probes=scaled(800), seed=seed,
                     name=f"db-hashjoin-{seed}")


def experiment():
    hierarchy = bench_hierarchy()
    table = Table(
        "E18: one core, two strands — threading vs SST",
        ["configuration", "threads", "per-thread IPC",
         "core throughput (IPC)"],
    )

    # (a) Both strands serve one thread: a 2-wide SST core.
    sst = run(sst_machine(hierarchy, width=2), _program(0))
    table.add_row("SST (both strands, 1 thread)", 1,
                  round(sst.ipc, 3), round(sst.ipc, 3))

    # (b) Two in-order threads share the core (width 1 each, shared
    # L1/TLB, shared L2 path).
    duo = Multicore(
        hierarchy,
        [SSTConfig(width=1, checkpoints=0)] * 2,
        [_program(0), _program(1)],
        share_l1=True,
    ).run()
    per_thread = duo.aggregate_ipc / 2
    table.add_row("2 in-order threads", 2, round(per_thread, 3),
                  round(duo.aggregate_ipc, 3))

    # (c) Two SST threads share the core (width 1 each): speculation
    # per thread *and* thread-level overlap, fighting for one L1.
    duo_sst = Multicore(
        hierarchy,
        [SSTConfig(width=1, checkpoints=2)] * 2,
        [_program(0), _program(1)],
        share_l1=True,
    ).run()
    table.add_row("2 SST threads", 2,
                  round(duo_sst.aggregate_ipc / 2, 3),
                  round(duo_sst.aggregate_ipc, 3))

    return table, {
        "sst_single": sst.ipc,
        "duo_inorder": duo.aggregate_ipc,
        "duo_sst": duo_sst.aggregate_ipc,
    }


def test_e18_core_threading(benchmark):
    table, metrics = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e18_core_threading", table)
    benchmark.extra_info["metrics"] = {
        key: round(value, 3) for key, value in metrics.items()
    }
    # Per-thread latency: dedicating both strands to one thread (SST)
    # must beat a thread's share of the threaded core.
    assert metrics["sst_single"] > metrics["duo_inorder"] / 2
    # Speculating threads beat plain threads at equal thread count.
    assert metrics["duo_sst"] > metrics["duo_inorder"]