#!/usr/bin/env python
"""Run the whole 18-experiment evaluation in one command.

This script is a thin adapter over the ``repro`` CLI — the experiments
themselves live in :mod:`repro.experiments` and everything here maps
1:1 onto ``repro experiments run`` (plus the ``--perf-smoke``
simulator-throughput gate from :mod:`perf_report`).  Kept for muscle
memory and old docs; new workflows should call the CLI directly.

Examples::

    python benchmarks/run_all.py                  # full evaluation
    python benchmarks/run_all.py --smoke --jobs 4 # CI smoke pass
    python benchmarks/run_all.py --only e3,e8     # two experiments
    python benchmarks/run_all.py --no-cache       # force re-simulation

Requires the ``repro`` package to be importable (``pip install -e .``
or ``PYTHONPATH=src``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

try:
    from repro.cli import main as repro_main
except ImportError as exc:  # pragma: no cover — setup error, not logic
    raise SystemExit(
        "error: the `repro` package is not importable "
        f"({exc}).\nInstall it (`pip install -e .`) or run with "
        "`PYTHONPATH=src`."
    ) from None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark suite (tables and JSON result "
                    "documents land in benchmarks/results/). Thin "
                    "adapter over `repro experiments run`.")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink every workload so the suite runs in "
                             "seconds (sets REPRO_BENCH_SMOKE=1)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="experiments to run concurrently "
                             "(default: REPRO_JOBS or 1; 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache (REPRO_CACHE=0)")
    parser.add_argument("--only", default=None, metavar="E3,E8",
                        help="comma-separated experiment ids to run")
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="override the per-run instruction budget")
    parser.add_argument("--perf-smoke", action="store_true",
                        help="measure simulator throughput on the tiny "
                             "suite, rewrite benchmarks/BENCH_smoke.json, "
                             "and fail on a regression beyond "
                             "--perf-tolerance vs the committed baseline")
    parser.add_argument("--perf-tolerance", type=float, default=0.30,
                        metavar="FRACTION",
                        help="allowed --perf-smoke throughput drop "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--ensemble-min-speedup", type=float,
                        default=None, metavar="RATIO",
                        help="--perf-smoke floor for the N=64 ensemble "
                             "aggregate speedup over the scalar "
                             "interpreter (default: the package's "
                             "loose gate)")
    parser.add_argument("--timing-ensemble-min-speedup", type=float,
                        default=None, metavar="RATIO",
                        help="--perf-smoke floor for the N=64 batched "
                             "timing-ensemble aggregate speedup over "
                             "lane-by-lane scalar in-order runs "
                             "(default: the package's gate)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the smoke suite with REPRO_SANITIZE=1 "
                             "(per-event invariant checking; implies "
                             "--smoke --no-cache, since cached results "
                             "would skip the checked simulations)")
    args = parser.parse_args(argv)

    if args.perf_smoke:
        import perf_report

        kwargs = {"tolerance": args.perf_tolerance}
        if args.ensemble_min_speedup is not None:
            kwargs["ensemble_min_speedup"] = args.ensemble_min_speedup
        if args.timing_ensemble_min_speedup is not None:
            kwargs["timing_min_speedup"] = (
                args.timing_ensemble_min_speedup
            )
        return perf_report.run_perf_smoke(**kwargs)

    forwarded = ["experiments", "run"]
    if args.only:
        forwarded.extend(
            token.strip() for token in args.only.split(",") if token.strip()
        )
    else:
        forwarded.append("--all")
    if args.smoke:
        forwarded.append("--smoke")
    if args.jobs is not None:
        forwarded.extend(["--jobs", str(args.jobs)])
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.max_instructions is not None:
        forwarded.extend(["--max-instructions", str(args.max_instructions)])
    if args.sanitize:
        forwarded.append("--sanitize")
    return repro_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
