#!/usr/bin/env python
"""Run the whole 18-experiment evaluation in one command.

Each ``bench_e*.py`` module is executed in its own worker process (the
experiments are independent), so ``--jobs 4`` overlaps four experiments
at a time.  Workers run their simulations single-threaded
(``REPRO_JOBS=1``) to avoid nested pools; results go through the shared
content-addressed cache, so a re-run after an interrupted sweep only
simulates the missing points.

Examples::

    python benchmarks/run_all.py                  # full evaluation
    python benchmarks/run_all.py --smoke --jobs 4 # CI smoke pass
    python benchmarks/run_all.py --only e3,e8     # two experiments
    python benchmarks/run_all.py --no-cache       # force re-simulation
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import re
import sys
import time
import traceback
from typing import List, Optional, Tuple

BENCH_DIR = pathlib.Path(__file__).parent

# Committed simulator-throughput baseline for --perf-smoke (see
# perf_report.py).  Regressions beyond the tolerance fail the run.
PERF_BASELINE_PATH = BENCH_DIR / "BENCH_smoke.json"
PERF_REGRESSION_TOLERANCE = 0.30


def discover() -> List[str]:
    """Module names of every experiment, in e1..e18 order."""
    def order(name: str) -> int:
        match = re.match(r"bench_e(\d+)_", name)
        return int(match.group(1)) if match else 10 ** 6

    names = [path.stem for path in BENCH_DIR.glob("bench_e*_*.py")]
    return sorted(names, key=order)


def _run_one(module_name: str) -> Tuple[str, float, Optional[str]]:
    """Worker: import one experiment module, run it, persist its table.

    Returns (experiment name, wall seconds, error text or None).
    """
    os.environ["REPRO_JOBS"] = "1"  # no nested pools inside a worker
    experiment_name = module_name[len("bench_"):]
    start = time.perf_counter()
    try:
        for path in (BENCH_DIR, BENCH_DIR.parent / "src"):
            if str(path) not in sys.path:
                sys.path.insert(0, str(path))
        import importlib

        module = importlib.import_module(module_name)
        result = module.experiment()
        table = result[0] if isinstance(result, tuple) else result
        render = getattr(table, "render", None)
        if render is not None:
            results_dir = BENCH_DIR / "results"
            results_dir.mkdir(exist_ok=True)
            (results_dir / f"{experiment_name}.txt").write_text(
                render() + "\n")
    except Exception:  # noqa: BLE001 — one experiment must not kill the run
        return experiment_name, time.perf_counter() - start, \
            traceback.format_exc()
    return experiment_name, time.perf_counter() - start, None


def run_perf_smoke() -> int:
    """Measure simulator throughput (tiny scale) against the committed
    ``BENCH_smoke.json`` baseline.

    The fresh snapshot always replaces the file — ``git diff`` shows the
    trajectory, and committing it records a new baseline.  The previous
    (committed) numbers are read *before* the overwrite and the run
    fails if aggregate insts/host-second dropped by more than
    :data:`PERF_REGRESSION_TOLERANCE`.
    """
    os.environ["REPRO_BENCH_SMOKE"] = "1"
    for path in (BENCH_DIR, BENCH_DIR.parent / "src"):
        if str(path) not in sys.path:
            sys.path.insert(0, str(path))
    import perf_report

    baseline = None
    try:
        baseline = json.loads(PERF_BASELINE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        pass

    payload = perf_report.measure(tag="smoke")
    print(perf_report.render(payload))
    perf_report.write_report(payload, PERF_BASELINE_PATH)
    print(f"wrote {PERF_BASELINE_PATH}")

    if baseline is None:
        print("no committed baseline found; snapshot recorded, "
              "nothing to compare")
        return 0
    try:
        old = baseline["aggregate"]["total"]["insts_per_host_second"]
    except (KeyError, TypeError):
        print("committed baseline is unreadable; snapshot recorded")
        return 0
    new = payload["aggregate"]["total"]["insts_per_host_second"]
    if not old or not new:
        return 0
    ratio = new / old
    print(f"throughput vs committed baseline: {ratio:.2f}x "
          f"({old} -> {new} insts/host-sec)")
    if ratio < 1.0 - PERF_REGRESSION_TOLERANCE:
        print(f"FAIL: simulator throughput regressed more than "
              f"{PERF_REGRESSION_TOLERANCE:.0%} vs the committed "
              f"baseline", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark suite (tables land in "
                    "benchmarks/results/).")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink every workload so the suite runs in "
                             "seconds (sets REPRO_BENCH_SMOKE=1)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="experiments to run concurrently "
                             "(default: REPRO_JOBS or 1; 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache (REPRO_CACHE=0)")
    parser.add_argument("--only", default=None, metavar="E3,E8",
                        help="comma-separated experiment prefixes to run")
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="override the per-run instruction budget")
    parser.add_argument("--perf-smoke", action="store_true",
                        help="measure simulator throughput on the tiny "
                             "suite, rewrite benchmarks/BENCH_smoke.json, "
                             "and fail on a >30%% regression vs the "
                             "committed baseline")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the smoke suite with REPRO_SANITIZE=1 "
                             "(per-event invariant checking; implies "
                             "--smoke --no-cache, since cached results "
                             "would skip the checked simulations)")
    args = parser.parse_args(argv)

    if args.perf_smoke:
        return run_perf_smoke()

    # Environment must be fixed before any worker forks (common.py reads
    # it at import time, which happens inside the workers).
    if args.sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
        args.smoke = True
        args.no_cache = True
    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    if args.no_cache:
        os.environ["REPRO_CACHE"] = "0"
    if args.max_instructions is not None:
        os.environ["REPRO_BENCH_MAX_INSTRUCTIONS"] = str(args.max_instructions)

    modules = discover()
    if args.only:
        wanted = [token.strip().lower() for token in args.only.split(",")]
        modules = [
            name for name in modules
            if any(name[len("bench_"):].startswith(prefix + "_")
                   or name[len("bench_"):].split("_")[0] == prefix
                   for prefix in wanted)
        ]
        if not modules:
            parser.error(f"--only {args.only!r} matched no experiments")

    jobs = args.jobs
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    if jobs <= 0:
        jobs = multiprocessing.cpu_count()
    jobs = min(jobs, len(modules))

    mode = "smoke" if args.smoke else "full"
    sanitize_note = ", sanitize=on" if args.sanitize else ""
    print(f"running {len(modules)} experiments ({mode} scale, "
          f"jobs={jobs}, cache={'off' if args.no_cache else 'on'}"
          f"{sanitize_note})")

    start = time.perf_counter()
    if jobs > 1:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=jobs) as pool:
            reports = pool.map(_run_one, modules)
    else:
        reports = [_run_one(name) for name in modules]
    total = time.perf_counter() - start

    failures = []
    for name, seconds, error in reports:
        status = "FAIL" if error else "ok"
        print(f"  {status:4s} {name:24s} {seconds:7.2f}s")
        if error:
            failures.append((name, error))
    print(f"total: {total:.2f}s wall for {len(modules)} experiments")

    for name, error in failures:
        print(f"\n--- {name} failed ---\n{error}", file=sys.stderr)
    if args.sanitize and not failures:
        print("sanitize: zero invariant violations across "
              f"{len(modules)} experiments")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
