"""Pytest-benchmark adapter for E19 — the experiment itself lives in
:mod:`repro.experiments.e19_spec_leak`.

Run it standalone (``python benchmarks/bench_e19_spec_leak.py``), through
pytest-benchmark (``pytest benchmarks/bench_e19_spec_leak.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e19_spec_leak = make_bench_test("e19")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e19", "--echo", *sys.argv[1:]]))
