"""E12 — branch-predictor sensitivity of deferred-branch speculation.

NA-operand branches ride the predictor; better predictors mean fewer
speculation failures and deeper surviving run-ahead.  Compared on the
unpredictable and the biased variants of the branchy workload.
"""

from common import bench_hierarchy, run, save_table, scaled
from repro.config import (
    BranchPredictorConfig,
    CoreKind,
    MachineConfig,
    PredictorKind,
    SSTConfig,
)
from repro.core import FailCause
from repro.stats.report import Table
from repro.workloads import branchy_reduce

PREDICTORS = (PredictorKind.ALWAYS_NOT_TAKEN, PredictorKind.BIMODAL,
              PredictorKind.GSHARE)


def _machine(kind: PredictorKind) -> MachineConfig:
    return MachineConfig(
        core_kind=CoreKind.SST,
        hierarchy=bench_hierarchy(),
        sst=SSTConfig(predictor=BranchPredictorConfig(kind=kind)),
        name=f"sst-{kind.value}",
    )


def experiment():
    programs = [
        branchy_reduce(iterations=scaled(4000), data_words=scaled(1 << 15),
                       biased=False),
        branchy_reduce(iterations=scaled(4000), data_words=scaled(1 << 15),
                       biased=True,
                       name="int-branchy-biased"),
    ]
    table = Table(
        "E12: SST IPC and deferred-branch fails vs predictor",
        ["workload", "predictor", "IPC", "deferred-branch fails"],
    )
    by_program = {}
    for program in programs:
        ipcs = {}
        for kind in PREDICTORS:
            result = run(_machine(kind), program)
            fails = result.extra["sst"].fails[
                FailCause.DEFERRED_BRANCH_MISPREDICT
            ]
            ipcs[kind] = (result.ipc, fails)
            table.add_row(program.name, kind.value, round(result.ipc, 3),
                          fails)
        by_program[program.name] = ipcs
    return table, by_program


def test_e12_branch(benchmark):
    table, by_program = benchmark.pedantic(experiment, rounds=1,
                                           iterations=1)
    save_table("e12_branch", table)
    biased = by_program["int-branchy-biased"]
    # On learnable data, a real predictor clearly beats static
    # not-taken, both in failures and performance.
    static_ipc, static_fails = biased[PredictorKind.ALWAYS_NOT_TAKEN]
    gshare_ipc, gshare_fails = biased[PredictorKind.GSHARE]
    assert gshare_fails < static_fails
    assert gshare_ipc > static_ipc
