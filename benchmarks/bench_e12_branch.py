"""Pytest-benchmark adapter for E12 — the experiment itself lives in
:mod:`repro.experiments.e12_branch`.

Run it standalone (``python benchmarks/bench_e12_branch.py``), through
pytest-benchmark (``pytest benchmarks/bench_e12_branch.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e12_branch = make_bench_test("e12")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e12", "--echo", *sys.argv[1:]]))
