"""Pytest-benchmark adapter for E2 — the experiment itself lives in
:mod:`repro.experiments.e02_sst_vs_ooo`.

Run it standalone (``python benchmarks/bench_e2_sst_vs_ooo.py``), through
pytest-benchmark (``pytest benchmarks/bench_e2_sst_vs_ooo.py``), or — for
the whole suite — ``repro experiments run``.  All three paths go
through the same :class:`~repro.experiments.engine.ExperimentEngine`
and write the same text table + JSON result document.
"""

from repro.experiments import make_bench_test

test_e2_sst_vs_ooo = make_bench_test("e2")


if __name__ == "__main__":
    import sys

    from repro.cli import main

    sys.exit(main(["experiments", "run", "e2", "--echo", *sys.argv[1:]]))
