"""E2 — the abstract's headline: SST per-thread performance vs
"larger and higher-powered" out-of-order cores (ROB 32/64/128).

Expected shape: on the *commercial* (miss-bound) suite the 2-wide SST
core beats even the 4-wide ROB-128 OoO core by tens of percent
(the paper reports 18%); on the compute suite the OoO cores win.
"""

from common import (
    bench_commercial_suite,
    bench_compute_suite,
    bench_hierarchy,
    ooo_comparators,
    run_matrix,
    save_table,
)
from repro.config import sst_machine
from repro.stats.report import Table, geomean


def experiment():
    hierarchy = bench_hierarchy()
    configs = [sst_machine(hierarchy)] + ooo_comparators(hierarchy)
    commercial = bench_commercial_suite()
    compute = bench_compute_suite()
    matrix = run_matrix(commercial + compute, configs)

    table = Table(
        "E2: IPC of SST vs out-of-order cores (per-thread)",
        ["workload", "suite"] + [config.name for config in configs],
    )
    ratios = {"commercial": [], "compute": []}
    for suite_name, programs in (("commercial", commercial),
                                 ("compute", compute)):
        for program in programs:
            results = matrix[program.name]
            table.add_row(
                program.name, suite_name,
                *(round(results[config.name].ipc, 3) for config in configs),
            )
            ratios[suite_name].append(
                results[configs[0].name].speedup_over(
                    results["ooo-4w-rob128"]
                )
            )
    table.add_row(
        "sst vs ooo-128 geomean", "commercial",
        f"{geomean(ratios['commercial']):.2f}x", "", "", "",
    )
    table.add_row(
        "sst vs ooo-128 geomean", "compute",
        f"{geomean(ratios['compute']):.2f}x", "", "", "",
    )
    return table, ratios


def test_e2_sst_vs_ooo(benchmark):
    table, ratios = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_table("e2_sst_vs_ooo", table)
    commercial = geomean(ratios["commercial"])
    compute = geomean(ratios["compute"])
    benchmark.extra_info["sst_vs_ooo128_commercial"] = round(commercial, 3)
    benchmark.extra_info["sst_vs_ooo128_compute"] = round(compute, 3)
    # The paper's claim: better per-thread performance on commercial
    # workloads than a larger OoO (18% there; shape, not the constant).
    assert commercial > 1.1
    # ...and an honest reproduction shows OoO ahead on compute codes.
    assert compute < 1.0
