"""Configuration validation and presets."""

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreKind,
    DRAMConfig,
    HierarchyConfig,
    InOrderConfig,
    MachineConfig,
    OoOConfig,
    SSTConfig,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.errors import ConfigError


def test_cache_geometry_helpers():
    config = CacheConfig(size_bytes=32 * 1024, assoc=4, line_bytes=64)
    assert config.num_sets == 128


@pytest.mark.parametrize("kwargs", [
    dict(size_bytes=1000, assoc=4, line_bytes=64),  # non-pow2 sets
    dict(size_bytes=64, assoc=4, line_bytes=64),  # smaller than a set
    dict(size_bytes=4096, assoc=0, line_bytes=64),
    dict(size_bytes=4096, assoc=1, line_bytes=4),  # line < word
    dict(size_bytes=4096, assoc=1, line_bytes=64, mshr_entries=0),
])
def test_bad_cache_configs(kwargs):
    with pytest.raises(ConfigError):
        CacheConfig(**kwargs)


def test_bad_dram_configs():
    with pytest.raises(ConfigError):
        DRAMConfig(latency=0)
    with pytest.raises(ConfigError):
        DRAMConfig(min_interval=-1)


def test_predictor_validation():
    with pytest.raises(ConfigError):
        BranchPredictorConfig(table_bits=30)
    with pytest.raises(ConfigError):
        BranchPredictorConfig(history_bits=20, table_bits=10)
    with pytest.raises(ConfigError):
        BranchPredictorConfig(btb_entries=100)


def test_inorder_width_bounds():
    with pytest.raises(ConfigError):
        InOrderConfig(width=0)
    with pytest.raises(ConfigError):
        InOrderConfig(width=16)


def test_ooo_structure_bounds():
    with pytest.raises(ConfigError):
        OoOConfig(iq_size=256, rob_size=128)
    with pytest.raises(ConfigError):
        OoOConfig(lsq_size=256, rob_size=128)
    with pytest.raises(ConfigError):
        OoOConfig(rob_size=1)


def test_sst_validation():
    with pytest.raises(ConfigError):
        SSTConfig(dq_size=0)
    with pytest.raises(ConfigError):
        SSTConfig(checkpoints=-1)
    with pytest.raises(ConfigError):
        SSTConfig(checkpoints=0, scout_only=True)


def test_sst_mode_names():
    assert SSTConfig(checkpoints=0).mode_name == "inorder"
    assert SSTConfig(checkpoints=1, scout_only=True).mode_name == "scout"
    assert SSTConfig(checkpoints=1).mode_name == "execute-ahead"
    assert SSTConfig(checkpoints=2).mode_name == "sst"


def test_machine_requires_matching_core_config():
    with pytest.raises(ConfigError):
        MachineConfig(core_kind=CoreKind.SST)  # sst config missing


def test_machine_default_name():
    config = MachineConfig(core_kind=CoreKind.INORDER,
                           inorder=InOrderConfig())
    assert config.name == "inorder"


def test_presets_build():
    assert inorder_machine().core_kind is CoreKind.INORDER
    assert scout_machine().sst.scout_only
    assert ea_machine().sst.checkpoints == 1
    assert sst_machine().sst.checkpoints == 2
    assert ooo_machine(rob_size=64).ooo.rob_size == 64


def test_l2_miss_latency_helper():
    hierarchy = HierarchyConfig()
    expected = (hierarchy.l1d.hit_latency + hierarchy.l2.hit_latency
                + hierarchy.dram.latency)
    assert hierarchy.l2_miss_latency() == expected


def test_configs_are_frozen():
    config = SSTConfig()
    with pytest.raises(Exception):
        config.dq_size = 1  # type: ignore[misc]
