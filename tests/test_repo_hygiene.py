"""Repository-level hygiene: everything compiles, the public API is
importable and complete, examples are syntactically sound."""

import pathlib
import py_compile

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def all_python_files():
    files = []
    for directory in ("src", "examples", "benchmarks"):
        files.extend(sorted((REPO / directory).rglob("*.py")))
    return files


@pytest.mark.parametrize("path", all_python_files(),
                         ids=lambda p: str(p.relative_to(REPO)))
def test_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_public_api_exports_resolve():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_examples_have_main_guards():
    for path in sorted((REPO / "examples").glob("*.py")):
        text = path.read_text()
        assert '__name__ == "__main__"' in text, path.name
        assert "def main()" in text, path.name


def test_every_experiment_has_a_bench_module():
    """DESIGN.md's experiment index and benchmarks/ must agree."""
    design = (REPO / "DESIGN.md").read_text()
    bench_names = {
        path.stem for path in (REPO / "benchmarks").glob("bench_e*.py")
    }
    for name in bench_names:
        assert name + ".py" in design, f"{name} missing from DESIGN.md"
    # And every experiment row in DESIGN.md points at a real file.
    import re

    for match in re.finditer(r"benchmarks/(bench_e\w+)\.py", design):
        assert match.group(1) in bench_names, match.group(1)


def test_bench_adapters_match_registry():
    """Every ``benchmarks/bench_e*.py`` adapter drives the registered
    experiment its file name claims, and every registered experiment
    has exactly one adapter."""
    import re

    from repro.experiments import list_specs

    expected = {spec.eid: spec.name for spec in list_specs()}
    adapters = {}
    for path in sorted((REPO / "benchmarks").glob("bench_e*_*.py")):
        match = re.search(r'make_bench_test\("(e\d+)"\)', path.read_text())
        assert match, f"{path.name} does not use make_bench_test"
        adapters[match.group(1)] = path.stem[len("bench_"):]
    assert adapters == expected


def test_results_tables_and_documents_in_sync():
    """Generated results come in pairs: for every experiment the stored
    ``.txt`` table must be exactly the JSON document's rendered table
    (regenerate with ``repro experiments run`` after changing either
    side)."""
    results_dir = REPO / "benchmarks" / "results"
    json_paths = (
        sorted(results_dir.glob("e*_*.json")) if results_dir.is_dir()
        else []
    )
    if not json_paths:
        pytest.skip("no generated results in this checkout")
    from repro.experiments import load_result_doc

    txt_stems = {path.stem for path in results_dir.glob("e*_*.txt")}
    assert txt_stems == {path.stem for path in json_paths}
    for json_path in json_paths:
        doc = load_result_doc(json_path)  # validates the schema
        assert doc["experiment"]["name"] == json_path.stem, json_path.name
        txt = json_path.with_suffix(".txt").read_text()
        assert txt == doc["table"]["rendered"] + "\n", (
            f"{json_path.stem}: .txt and .json disagree"
        )


def test_docs_exist_and_are_substantial():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        text = (REPO / name).read_text()
        assert len(text) > 2000, name


def test_no_bytecode_caches_tracked():
    """``__pycache__`` must be ignored, never committed."""
    import subprocess

    gitignore = (REPO / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    tracked = subprocess.run(
        ["git", "ls-files"], cwd=REPO, capture_output=True, text=True,
        check=True,
    ).stdout
    offenders = [
        line for line in tracked.splitlines()
        if "__pycache__" in line or line.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, offenders
