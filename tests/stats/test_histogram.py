from repro.stats.histogram import Histogram


def test_empty_histogram():
    histogram = Histogram()
    assert histogram.count == 0
    assert histogram.mean == 0.0
    assert histogram.max == 0
    assert histogram.percentile(0.5) == 0


def test_mean_and_extremes():
    histogram = Histogram()
    for value in (1, 2, 3, 10):
        histogram.add(value)
    assert histogram.mean == 4.0
    assert histogram.min == 1
    assert histogram.max == 10


def test_weights():
    histogram = Histogram()
    histogram.add(5, weight=3)
    histogram.add(1, weight=1)
    assert histogram.count == 4
    assert histogram.mean == (15 + 1) / 4


def test_percentiles():
    histogram = Histogram()
    for value in range(1, 101):
        histogram.add(value)
    assert histogram.percentile(0.5) == 50
    assert histogram.percentile(0.99) == 99
    assert histogram.percentile(1.0) == 100


def test_items_sorted():
    histogram = Histogram()
    for value in (3, 1, 2, 1):
        histogram.add(value)
    assert list(histogram.items()) == [(1, 2), (2, 1), (3, 1)]


def test_as_dict():
    histogram = Histogram()
    histogram.add(7, weight=2)
    assert histogram.as_dict() == {7: 2}
