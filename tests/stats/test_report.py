import math

import pytest

from repro.stats.report import Table, format_ratio, geomean


def test_format_ratio():
    assert format_ratio(1.5) == "1.50x"


def test_geomean_basics():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([3]) == pytest.approx(3.0)
    assert geomean([]) == 0.0


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_geomean_matches_log_identity():
    values = [1.1, 2.2, 3.3]
    expected = math.exp(sum(math.log(v) for v in values) / 3)
    assert geomean(values) == pytest.approx(expected)


def test_table_rendering():
    table = Table("Results", ["workload", "speedup"])
    table.add_row("oltp", 1.25)
    table.add_row("db", "2.00x")
    text = table.render()
    assert "Results" in text
    assert "workload" in text
    assert "1.250" in text
    assert "2.00x" in text
    lines = text.splitlines()
    assert len(lines) == 1 + 1 + 1 + 1 + 2 + 1  # title, rules, header, rows


def test_table_rejects_ragged_rows():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError, match="2 columns"):
        table.add_row("only-one")


def test_empty_table_renders_header():
    table = Table("Empty", ["col"])
    assert "col" in table.render()
