"""Behavioural tests of the SST core: episodes, deferral, the two
strands, scout degradation, speculation failures, and commit/rollback
architectural correctness.  Every run is checked against the golden
interpreter."""

import pytest

from repro.config import SSTConfig
from repro.core import ExecMode, FailCause, ScoutCause, SSTCore
from repro.errors import ExecutionError
from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from tests.conftest import small_hierarchy_config

MISS_ADDR = 0x100000


def run(source_or_program, config=None, latency=200, mshr=16):
    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=latency,
                                                       mshr=mshr))
    core = SSTCore(program, hierarchy, config or SSTConfig())
    result = core.run()
    verify_against_golden(result, program)
    return result


def sst_stats(result):
    return result.extra["sst"]


# ----------------------------------------------------------------------
# Episode lifecycle.
# ----------------------------------------------------------------------

def test_no_misses_no_episodes(countdown_program):
    result = run(countdown_program)
    stats = sst_stats(result)
    assert stats.episodes == 0
    assert result.state.regs[2] == sum(range(1, 11))


def test_miss_triggers_episode_and_commits():
    result = run(f"""
        movi r1, {MISS_ADDR}
        ld   r2, 0(r1)
        addi r3, r2, 1
        movi r4, 7
        halt
    """)
    stats = sst_stats(result)
    assert stats.episodes == 1
    assert stats.full_commits == 1
    assert stats.deferred >= 1  # the dependent addi
    assert stats.total_fails == 0


def test_independent_work_overlaps_the_miss():
    filler = "\n".join("addi r4, r4, 1" for _ in range(100))
    source = f"""
        movi r1, {MISS_ADDR}
        ld   r2, 0(r1)
        {filler}
        addi r3, r2, 1
        halt
    """
    result = run(source, latency=200)
    # 100 independent instructions executed under the miss: total stays
    # close to one miss latency, far under miss + 100/width.
    assert result.cycles < 200 + 120
    assert sst_stats(result).ahead_insts >= 100


def test_independent_misses_create_mlp():
    source = f"""
        movi r1, {MISS_ADDR}
        movi r2, {MISS_ADDR + 0x10000}
        movi r3, {MISS_ADDR + 0x20000}
        ld   r4, 0(r1)
        ld   r5, 0(r2)
        ld   r6, 0(r3)
        add  r7, r4, r5
        add  r7, r7, r6
        halt
    """
    result = run(source, latency=200)
    assert result.cycles < 2 * 200  # three misses overlapped
    assert sst_stats(result).peak_outstanding_misses >= 2


def test_dependent_misses_cannot_overlap(miss_chain_program):
    result = run(miss_chain_program, latency=200)
    assert result.cycles > 3 * 200
    assert result.state.regs[5] == 8


def test_committed_instruction_count_matches_golden(countdown_program):
    from repro.isa.interpreter import Interpreter

    golden = Interpreter(countdown_program)
    golden.run()
    result = run(countdown_program)
    assert result.instructions == golden.stats.instructions


def test_committed_count_with_speculation():
    from repro.isa.interpreter import Interpreter

    program = assemble(f"""
        movi r1, {MISS_ADDR}
        ld   r2, 0(r1)
        addi r3, r2, 1
        addi r4, r4, 2
        halt
    """)
    golden = Interpreter(program)
    golden.run()
    result = run(program)
    assert result.instructions == golden.stats.instructions


# ----------------------------------------------------------------------
# EA vs SST: the second checkpoint is what buys concurrency.
# ----------------------------------------------------------------------

def _probe_loop_program(probes=48):
    """Independent-miss loop: each iteration misses a distinct line."""
    builder = ProgramBuilder("probe-loop")
    builder.movi(1, probes)
    builder.movi(2, MISS_ADDR)
    builder.movi(7, 0)
    builder.label("loop")
    builder.ld(9, 2, 0)
    builder.add(7, 7, 9)  # dependent -> deferred
    builder.addi(2, 2, 0x1040)  # stride chosen to spread cache sets
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "loop")
    builder.halt()
    return builder.build()


def test_sst_beats_ea_on_independent_miss_loop():
    # Enough probes that the DQ fills while misses are outstanding:
    # EA must pause the ahead strand to drain it, SST drains while the
    # ahead strand keeps issuing new probes.
    program = _probe_loop_program(probes=150)
    ea = run(program, SSTConfig(checkpoints=1, dq_size=48, sb_size=32,
                                scout_enabled=False), mshr=32)
    sst = run(program, SSTConfig(checkpoints=2, dq_size=48, sb_size=32,
                                 scout_enabled=False), mshr=32)
    assert sst.cycles < ea.cycles
    assert sst_stats(sst).region_commits >= 1
    assert sst_stats(ea).region_commits == 0


def test_ea_replay_pauses_ahead_strand():
    program = _probe_loop_program()
    ea = run(program, SSTConfig(checkpoints=1, dq_size=64, sb_size=32))
    modes = sst_stats(ea).mode_cycles
    assert modes[ExecMode.REPLAY_ONLY.value] > 0
    assert modes[ExecMode.SST.value] == 0


def test_sst_mode_cycles_recorded():
    program = _probe_loop_program()
    sst = run(program, SSTConfig(checkpoints=2, dq_size=64, sb_size=32))
    modes = sst_stats(sst).mode_cycles
    assert modes[ExecMode.SST.value] > 0


def test_mode_cycles_sum_to_total():
    program = _probe_loop_program()
    result = run(program)
    assert sum(sst_stats(result).mode_cycles.values()) == result.cycles


def test_more_checkpoints_never_hurt():
    program = _probe_loop_program()
    cycles = [
        run(program, SSTConfig(checkpoints=k, dq_size=64, sb_size=32)).cycles
        for k in (1, 2, 4)
    ]
    assert cycles[1] <= cycles[0]
    assert cycles[2] <= cycles[1] * 1.05


# ----------------------------------------------------------------------
# Degenerate configurations.
# ----------------------------------------------------------------------

def test_zero_checkpoints_is_plain_inorder(countdown_program, miss_chain_program):
    from repro.baselines.inorder import InOrderCore
    from repro.config import InOrderConfig

    for program in (countdown_program, miss_chain_program):
        hierarchy = MemoryHierarchy(small_hierarchy_config())
        inorder = InOrderCore(program, hierarchy, InOrderConfig()).run()
        sst0 = run(program, SSTConfig(checkpoints=0))
        assert sst0.cycles == inorder.cycles
        assert sst_stats(sst0).episodes == 0


def test_scout_only_always_rolls_back():
    program = _probe_loop_program(probes=24)
    result = run(program, SSTConfig(checkpoints=1, scout_only=True))
    stats = sst_stats(result)
    assert stats.scout_sessions[ScoutCause.SCOUT_ONLY] >= 1
    assert stats.full_commits == 0
    assert stats.region_commits == 0
    assert stats.scout_prefetches > 0


def test_scout_still_beats_inorder_via_warm_cache():
    from repro.baselines.inorder import InOrderCore
    from repro.config import InOrderConfig

    program = _probe_loop_program(probes=24)
    hierarchy = MemoryHierarchy(small_hierarchy_config())
    inorder = InOrderCore(program, hierarchy, InOrderConfig()).run()
    scout = run(program, SSTConfig(checkpoints=1, scout_only=True))
    assert scout.cycles < inorder.cycles * 0.75


# ----------------------------------------------------------------------
# Resource exhaustion -> scout (or stall with scout disabled).
# ----------------------------------------------------------------------

def test_dq_overflow_enters_scout():
    program = _probe_loop_program(probes=64)
    result = run(program, SSTConfig(checkpoints=2, dq_size=4, sb_size=32))
    assert sst_stats(result).scout_sessions[ScoutCause.DQ_FULL] >= 1


def test_sb_overflow_enters_scout():
    stores = "\n".join(f"st r2, {8 * i}(r1)" for i in range(24))
    source = f"""
        movi r1, {MISS_ADDR}
        ld   r2, 0(r1)
        movi r3, {MISS_ADDR + 0x40000}
        ld   r4, 0(r3)
        {stores}
        halt
    """
    result = run(source, SSTConfig(checkpoints=2, dq_size=32, sb_size=4))
    assert sst_stats(result).scout_sessions[ScoutCause.SB_FULL] >= 1


def test_scout_disabled_stalls_instead():
    program = _probe_loop_program(probes=32)
    result = run(program, SSTConfig(checkpoints=2, dq_size=4, sb_size=32,
                                    scout_enabled=False))
    stats = sst_stats(result)
    assert stats.total_scout_sessions == 0
    assert stats.full_commits + stats.region_commits >= 1


def test_tiny_dq_still_correct_with_and_without_scout():
    program = _probe_loop_program(probes=40)
    for scout_enabled in (True, False):
        run(program, SSTConfig(checkpoints=2, dq_size=1, sb_size=1,
                               scout_enabled=scout_enabled))


# ----------------------------------------------------------------------
# Deferred branches.
# ----------------------------------------------------------------------

BRANCH_ON_MISS = f"""
    .data {MISS_ADDR:#x}: %VALUE%
    movi r1, {MISS_ADDR}
    ld   r2, 0(r1)
    bne  r2, r0, taken
    movi r3, 7
    halt
taken:
    movi r3, 9
    halt
"""


def test_deferred_branch_correct_prediction_commits():
    # gshare counters initialise weakly-taken: predicting "taken" for a
    # branch that IS taken validates and the episode commits.
    result = run(BRANCH_ON_MISS.replace("%VALUE%", "1"))
    stats = sst_stats(result)
    assert stats.deferred_branches >= 1
    assert stats.total_fails == 0
    assert result.state.regs[3] == 9


def test_deferred_branch_mispredict_rolls_back():
    result = run(BRANCH_ON_MISS.replace("%VALUE%", "0"))
    stats = sst_stats(result)
    assert stats.fails[FailCause.DEFERRED_BRANCH_MISPREDICT] == 1
    assert stats.discarded_insts > 0
    assert result.state.regs[3] == 7  # correct path after rollback


def test_rollback_penalty_costs_cycles():
    cheap = run(BRANCH_ON_MISS.replace("%VALUE%", "0"),
                SSTConfig(rollback_penalty=0))
    costly = run(BRANCH_ON_MISS.replace("%VALUE%", "0"),
                 SSTConfig(rollback_penalty=64))
    assert costly.cycles >= cheap.cycles


def test_wrong_path_fault_is_contained():
    """A predicted wrong path may do illegal things; rollback hides it."""
    source = f"""
        .data {MISS_ADDR:#x}: 0
        movi r1, {MISS_ADDR}
        movi r5, 3
        ld   r2, 0(r1)
        bne  r2, r0, bad      ; actual: not taken; predicted: taken
        movi r3, 7
        halt
    bad:
        ld   r4, 0(r5)        ; misaligned load on the wrong path
        halt
    """
    result = run(source)
    assert result.state.regs[3] == 7
    assert sst_stats(result).fails[FailCause.DEFERRED_BRANCH_MISPREDICT] == 1


def test_real_fault_on_committed_path_raises():
    source = f"""
        movi r1, {MISS_ADDR}
        ld   r2, 0(r1)
        addi r3, r2, 3
        ld   r4, 0(r3)        ; misaligned for real (r2 = 0 -> addr 3)
        halt
    """
    program = assemble(source)
    hierarchy = MemoryHierarchy(small_hierarchy_config())
    core = SSTCore(program, hierarchy, SSTConfig())
    with pytest.raises(ExecutionError, match="misaligned"):
        core.run()


# ----------------------------------------------------------------------
# Deferred indirect jumps.
# ----------------------------------------------------------------------

def _deferred_jump_program():
    """Two indirect jumps through missing loads, to different targets:
    the first has no BTB prediction (ahead stalls, replay resumes); the
    second is predicted with the stale first target and fails."""
    builder = ProgramBuilder("deferred-jump")
    builder.movi(1, MISS_ADDR)
    builder.movi(10, 2)  # outer counter
    builder.movi(3, 0)
    builder.movi(4, 0)
    loop = builder.label("loop")
    builder.ld(2, 1, 0)  # miss -> NA target register
    builder.jalr(0, 2, 0)
    t1 = builder.here
    builder.addi(3, 3, 1)
    builder.jal(0, "join")
    t2 = builder.here
    builder.addi(4, 4, 1)
    builder.label("join")
    builder.movi(11, 0x10000)
    builder.add(1, 1, 11)
    builder.addi(10, 10, -1)
    builder.bne(10, 0, "loop")
    builder.halt()
    builder.data_word(MISS_ADDR, t1)
    builder.data_word(MISS_ADDR + 0x10000, t2)
    return builder.build()


def test_deferred_jump_resume_and_mispredict():
    result = run(_deferred_jump_program())
    stats = sst_stats(result)
    assert stats.deferred_jumps >= 2
    assert stats.fails[FailCause.DEFERRED_JUMP_MISPREDICT] == 1
    assert result.state.regs[3] == 1
    assert result.state.regs[4] == 1


# ----------------------------------------------------------------------
# Speculative stores and memory ordering.
# ----------------------------------------------------------------------

def test_store_forwarding_inside_episode():
    result = run(f"""
        movi r1, {MISS_ADDR}
        movi r5, {MISS_ADDR + 0x40000}
        ld   r2, 0(r1)        ; trigger
        movi r3, 42
        st   r3, 0(r5)        ; speculative store
        ld   r4, 0(r5)        ; must forward 42 from the SB
        addi r6, r4, 1
        halt
    """)
    assert result.state.regs[6] == 43
    assert sst_stats(result).total_fails == 0


MEM_ORDER_SOURCE = f"""
    .data {MISS_ADDR:#x}: {MISS_ADDR + 0x40000:#x}
    .data {MISS_ADDR + 0x40000:#x}: 5
    movi r1, {MISS_ADDR}
    movi r5, {MISS_ADDR + 0x40000}
    movi r3, 99
    ld   r2, 0(r1)        ; miss: r2 = {MISS_ADDR + 0x40000:#x}
    st   r3, 0(r2)        ; store with NA address
    ld   r4, 0(r5)        ; same address! bypass reads stale 5
    add  r6, r4, r0
    halt
"""


def test_bypass_detects_memory_order_violation():
    result = run(MEM_ORDER_SOURCE,
                 SSTConfig(bypass_unresolved_stores=True))
    stats = sst_stats(result)
    assert stats.fails[FailCause.MEMORY_ORDER_VIOLATION] == 1
    assert result.state.regs[6] == 99  # correct after rollback


def test_conservative_defers_instead_of_violating():
    result = run(MEM_ORDER_SOURCE,
                 SSTConfig(bypass_unresolved_stores=False))
    stats = sst_stats(result)
    assert stats.fails[FailCause.MEMORY_ORDER_VIOLATION] == 0
    assert stats.order_deferred >= 1
    assert result.state.regs[6] == 99


def test_bypass_of_disjoint_address_succeeds():
    source = f"""
        .data {MISS_ADDR:#x}: {MISS_ADDR + 0x40000:#x}
        movi r1, {MISS_ADDR}
        movi r5, {MISS_ADDR + 0x50000}
        movi r3, 99
        ld   r2, 0(r1)
        st   r3, 0(r2)        ; NA-address store (resolves elsewhere)
        ld   r4, 0(r5)        ; different address: bypass is safe
        add  r6, r4, r0
        halt
    """
    result = run(source, SSTConfig(bypass_unresolved_stores=True))
    assert sst_stats(result).total_fails == 0


def test_deferred_store_value():
    result = run(f"""
        movi r1, {MISS_ADDR}
        movi r5, {MISS_ADDR + 0x40000}
        ld   r2, 0(r1)
        st   r2, 0(r5)        ; NA data -> deferred store
        halt
    """)
    assert result.state.memory.read(MISS_ADDR + 0x40000) == 0


# ----------------------------------------------------------------------
# MEMBAR and HALT inside speculation.
# ----------------------------------------------------------------------

def test_membar_inside_episode_commits_first():
    result = run(f"""
        movi r1, {MISS_ADDR}
        ld   r2, 0(r1)
        addi r3, r2, 1
        membar
        addi r4, r3, 1
        halt
    """)
    stats = sst_stats(result)
    assert stats.full_commits >= 1
    assert result.state.regs[4] == 2


def test_halt_inside_episode_drains():
    result = run(f"""
        movi r1, {MISS_ADDR}
        movi r5, {MISS_ADDR + 0x40000}
        ld   r2, 0(r1)
        addi r3, r2, 1
        st   r3, 0(r5)
        halt
    """)
    assert result.state.memory.read(MISS_ADDR + 0x40000) == 1
    assert result.cycles >= 200


# ----------------------------------------------------------------------
# Long-op deferral.
# ----------------------------------------------------------------------

def test_div_triggers_episode_when_enabled():
    source = """
        movi r1, 1000
        movi r2, 7
        div  r3, r1, r2
        addi r4, r3, 1
        movi r5, 5
        halt
    """
    off = run(source, SSTConfig(defer_long_ops=False))
    on = run(source, SSTConfig(defer_long_ops=True))
    assert sst_stats(off).episodes == 0
    assert sst_stats(on).episodes == 1
    assert on.state.regs[4] == 143


# ----------------------------------------------------------------------
# Budget enforcement.
# ----------------------------------------------------------------------

def test_runaway_budget_enforced():
    program = assemble("loop: jal r0, loop\nhalt")
    hierarchy = MemoryHierarchy(small_hierarchy_config())
    core = SSTCore(program, hierarchy, SSTConfig())
    with pytest.raises(ExecutionError, match="without HALT"):
        core.run(max_instructions=500)
