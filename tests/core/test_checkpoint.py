"""Checkpoint file: ordering, capacity, epochs."""

import pytest

from repro.core.checkpoint import Checkpoint, CheckpointFile
from repro.core.regstate import RegSnapshot
from repro.errors import SimulatorInvariantError


def snap():
    return RegSnapshot(values=[0] * 32, na_producer={})


def ckpt(seq, pc=0):
    return Checkpoint(start_seq=seq, pc=pc, regs=snap(), taken_cycle=0)


def test_capacity_and_has_free():
    file = CheckpointFile(2)
    assert file.has_free
    file.take(ckpt(1))
    file.take(ckpt(5))
    assert not file.has_free
    with pytest.raises(SimulatorInvariantError):
        file.take(ckpt(9))
    assert file.stats.denied_full == 1


def test_in_order_enforced():
    file = CheckpointFile(3)
    file.take(ckpt(5))
    with pytest.raises(SimulatorInvariantError):
        file.take(ckpt(3))


def test_oldest_and_release():
    file = CheckpointFile(3)
    file.take(ckpt(1))
    file.take(ckpt(5))
    assert file.oldest().start_seq == 1
    released = file.release_oldest()
    assert released.start_seq == 1
    assert file.oldest().start_seq == 5


def test_oldest_empty_raises():
    with pytest.raises(SimulatorInvariantError):
        CheckpointFile(1).oldest()
    with pytest.raises(SimulatorInvariantError):
        CheckpointFile(1).release_oldest()


def test_boundary_above():
    file = CheckpointFile(3)
    file.take(ckpt(1))
    file.take(ckpt(10))
    file.take(ckpt(20))
    assert file.boundary_above(5).start_seq == 10
    assert file.boundary_above(15).start_seq == 20
    assert file.boundary_above(25) is None
    # The oldest checkpoint never acts as a boundary.
    assert file.boundary_above(0).start_seq == 10


def test_boundary_stats():
    file = CheckpointFile(2)
    file.take(ckpt(1))
    file.take(ckpt(2), boundary=True)
    assert file.stats.taken == 2
    assert file.stats.boundary_taken == 1
    assert file.stats.peak_live == 2


def test_clear():
    file = CheckpointFile(2)
    file.take(ckpt(1))
    file.clear()
    assert len(file) == 0
    assert not file
