"""NA bits + last-writer merge — the rename replacement."""

from repro.core.regstate import SpeculativeRegisters
from repro.isa.registers import REG_COUNT, ZERO_REG


def fresh(values=None):
    return SpeculativeRegisters(values or [0] * REG_COUNT)


def test_initialises_from_committed():
    spec = fresh([i for i in range(REG_COUNT)])
    assert spec.read(5) == 5
    assert not spec.is_na(5)


def test_zero_register_always_zero_and_available():
    spec = fresh()
    spec.write_available(ZERO_REG, 99, seq=1, ready_cycle=5)
    spec.write_na(ZERO_REG, producer_seq=2)
    assert spec.read(ZERO_REG) == 0
    assert not spec.is_na(ZERO_REG)


def test_na_marking_and_producer():
    spec = fresh()
    spec.write_na(3, producer_seq=7)
    assert spec.is_na(3)
    assert spec.producer_of(3) == 7


def test_available_write_clears_na():
    spec = fresh()
    spec.write_na(3, producer_seq=7)
    spec.write_available(3, 42, seq=9, ready_cycle=10)
    assert not spec.is_na(3)
    assert spec.read(3) == 42


def test_replayed_write_lands_when_youngest():
    spec = fresh()
    spec.write_na(3, producer_seq=7)
    assert spec.apply_replayed(3, 42, seq=7, ready_cycle=100) is True
    assert spec.read(3) == 42
    assert not spec.is_na(3)


def test_replayed_write_suppressed_by_younger_writer():
    """The NT/W-bit merge: a younger available write beats an older
    replayed one."""
    spec = fresh()
    spec.write_na(3, producer_seq=7)
    spec.write_available(3, 1000, seq=9, ready_cycle=5)  # younger overwrite
    assert spec.apply_replayed(3, 42, seq=7, ready_cycle=100) is False
    assert spec.read(3) == 1000


def test_replayed_write_suppressed_by_younger_na_writer():
    spec = fresh()
    spec.write_na(3, producer_seq=7)
    spec.write_na(3, producer_seq=11)  # younger deferred writer
    assert spec.apply_replayed(3, 42, seq=7, ready_cycle=100) is False
    assert spec.is_na(3)
    assert spec.producer_of(3) == 11


def test_snapshot_is_independent():
    spec = fresh()
    spec.write_available(2, 5, seq=1, ready_cycle=0)
    spec.write_na(3, producer_seq=4)
    snapshot = spec.snapshot()
    spec.write_available(2, 99, seq=2, ready_cycle=0)
    spec.write_available(3, 1, seq=5, ready_cycle=0)
    assert snapshot.values[2] == 5
    assert snapshot.na_producer == {3: 4}


def test_na_regs_view():
    spec = fresh()
    spec.write_na(4, 1)
    spec.write_na(6, 2)
    assert set(spec.na_regs()) == {4, 6}
