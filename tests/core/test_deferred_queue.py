"""Deferred queue: ordering, capacity, captured dataflow."""

import pytest

from repro.core.deferred_queue import DeferredQueue, DQEntry
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def entry(seq, **kwargs):
    return DQEntry(seq=seq, pc=0,
                   inst=Instruction(Op.ADD, rd=1, rs1=2, rs2=3), **kwargs)


def test_fifo_order():
    queue = DeferredQueue(4)
    queue.append(entry(1))
    queue.append(entry(2))
    assert queue.head().seq == 1
    assert queue.pop_head().seq == 1
    assert queue.head().seq == 2


def test_capacity_rejection_without_mutation():
    queue = DeferredQueue(1)
    assert queue.append(entry(1)) is True
    assert queue.append(entry(2)) is False
    assert len(queue) == 1
    assert queue.stats.rejected_full == 1


def test_seq_order_enforced():
    queue = DeferredQueue(4)
    queue.append(entry(5))
    with pytest.raises(ValueError):
        queue.append(entry(5))
    with pytest.raises(ValueError):
        queue.append(entry(3))


def test_all_below():
    queue = DeferredQueue(4)
    assert queue.all_below(0) is True
    queue.append(entry(3))
    queue.append(entry(7))
    assert queue.all_below(8) is True
    assert queue.all_below(7) is False


def test_producers_iteration():
    mixed = entry(1, rs1_producer=10, rs2_value=5)
    assert list(mixed.producers()) == [10]
    both = entry(2, rs1_producer=10, rs2_producer=11)
    assert list(both.producers()) == [10, 11]
    none = entry(3, rs1_value=1, rs2_value=2)
    assert list(none.producers()) == []


def test_occupancy_histogram_sampled_on_append():
    queue = DeferredQueue(8)
    for seq in range(1, 4):
        queue.append(entry(seq))
    assert queue.occupancy.count == 3
    assert queue.occupancy.max == 3


def test_clear_and_bool():
    queue = DeferredQueue(2)
    assert not queue
    queue.append(entry(1))
    assert queue
    queue.clear()
    assert not queue and queue.head() is None


def test_stats_replayed():
    queue = DeferredQueue(2)
    queue.append(entry(1))
    queue.pop_head()
    assert queue.stats.deferred == 1
    assert queue.stats.replayed == 1
