"""Shared event-driven timing layer: IssueClock, PerfCounters, wake
scans."""

from repro.core.timing import (
    IssueClock,
    PerfCounters,
    earliest_pending,
    fold_wake,
)


# ---------------------------------------------------------------------------
# IssueClock — width-slotted issue with fast-forward accounting.
# ---------------------------------------------------------------------------


def test_issue_fills_width_slots_before_advancing():
    clock = IssueClock(width=2)
    assert clock.issue_at(0) == 0
    assert clock.issue_at(0) == 0  # second slot, same cycle
    assert clock.issue_at(0) == 1  # width exhausted -> next cycle
    assert clock.cycle == 1


def test_issue_in_future_jumps_and_resets_slots():
    clock = IssueClock(width=2)
    clock.issue_at(0)
    assert clock.issue_at(10) == 10  # fast-forward, fresh slot budget
    assert clock.issue_at(10) == 10
    assert clock.issue_at(10) == 11


def test_fast_forward_accounting():
    perf = PerfCounters()
    clock = IssueClock(width=1, perf=perf)
    clock.issue_at(0)    # stepped cycle 0 (advances to 1: width 1)
    clock.issue_at(5)    # skips 1..4
    assert perf.cycles_stepped == 2
    assert perf.cycles_skipped == 4
    assert perf.fast_forwards == 1
    assert perf.cycles_seen == 6


def test_same_cycle_steps_counted_once():
    perf = PerfCounters()
    clock = IssueClock(width=4, perf=perf)
    for _ in range(3):
        clock.issue_at(0)
    assert perf.cycles_stepped == 1


def test_advance_to_attributes_stall_cause():
    perf = PerfCounters()
    clock = IssueClock(width=2, perf=perf)
    clock.advance_to(7, "branch")
    assert clock.cycle == 7
    assert clock.slots == 0
    assert perf.stall_cycles == {"branch": 7}
    assert perf.fast_forwards == 1
    clock.advance_to(3, "branch")  # in the past: no-op
    assert clock.cycle == 7
    assert perf.stall_cycles == {"branch": 7}


def test_advance_to_discards_remaining_slots():
    clock = IssueClock(width=4)
    clock.issue_at(0)
    clock.advance_to(2)
    # A redirect restarts the full issue width at the new cycle.
    assert [clock.issue_at(0) for _ in range(4)] == [2, 2, 2, 2]


# ---------------------------------------------------------------------------
# PerfCounters — pure observability.
# ---------------------------------------------------------------------------


def test_skip_fraction():
    perf = PerfCounters(cycles_stepped=25, cycles_skipped=75)
    assert perf.skip_fraction == 0.75
    assert PerfCounters().skip_fraction == 0.0


def test_as_dict_round_trips_stalls():
    perf = PerfCounters(cycles_stepped=1, cycles_skipped=3,
                        fast_forwards=2, stall_cycles={"memory": 3})
    snapshot = perf.as_dict()
    assert snapshot["cycles_skipped"] == 3
    assert snapshot["skip_fraction"] == 0.75
    assert snapshot["stall_cycles"] == {"memory": 3}
    # The export is a copy, not a view.
    snapshot["stall_cycles"]["memory"] = 99
    assert perf.stall_cycles["memory"] == 3


# ---------------------------------------------------------------------------
# Wake scans.
# ---------------------------------------------------------------------------


def test_earliest_pending_ignores_past_and_present():
    assert earliest_pending([5, 3, 9], cycle=3) == 5
    assert earliest_pending([5, 3, 9], cycle=0) == 3
    assert earliest_pending([2, 3], cycle=3) is None
    assert earliest_pending([], cycle=0) is None


def test_fold_wake_keeps_minimum_future_candidate():
    assert fold_wake(None, 7, cycle=3) == 7
    assert fold_wake(7, 5, cycle=3) == 5
    assert fold_wake(5, 7, cycle=3) == 5
    assert fold_wake(5, 3, cycle=3) == 5  # not in the future: ignored
    assert fold_wake(None, None, cycle=3) is None
