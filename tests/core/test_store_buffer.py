"""Speculative store buffer: forwarding, unresolved-store policies,
commit drain, conflicts."""

import pytest

from repro.core.store_buffer import StoreBuffer
from repro.errors import SimulatorInvariantError


def test_forward_youngest_older_entry():
    sb = StoreBuffer(8)
    sb.append_resolved(1, addr=0x100, value=10)
    sb.append_resolved(3, addr=0x100, value=30)
    sb.append_resolved(5, addr=0x200, value=50)
    assert sb.forward(0x100, before_seq=4) == (30, 3)
    assert sb.forward(0x100, before_seq=2) == (10, 1)
    assert sb.forward(0x100, before_seq=1) is None
    assert sb.forward(0x300, before_seq=10) is None
    assert sb.stats.forwards == 2


def test_capacity_rejection():
    sb = StoreBuffer(1)
    assert sb.append_resolved(1, 0x100, 1) is True
    assert sb.append_resolved(2, 0x108, 2) is False
    assert sb.stats.rejected_full == 1


def test_unresolved_blocks_same_address_always():
    sb = StoreBuffer(8)
    sb.append_unresolved(2, addr=0x100)  # value NA, address known
    assert sb.unresolved.blocks_load(0x100, load_seq=5, conservative=False)
    assert sb.unresolved.blocks_load(0x100, load_seq=5, conservative=True)
    # A different address never blocks when the address is known.
    assert not sb.unresolved.blocks_load(0x200, 5, conservative=True)


def test_unknown_address_blocks_only_conservative():
    sb = StoreBuffer(8)
    sb.append_unresolved(2, addr=None)
    assert sb.unresolved.blocks_load(0x100, 5, conservative=True)
    assert not sb.unresolved.blocks_load(0x100, 5, conservative=False)


def test_older_loads_never_blocked():
    sb = StoreBuffer(8)
    sb.append_unresolved(6, addr=None)
    assert not sb.unresolved.blocks_load(0x100, load_seq=3, conservative=True)


def test_resolve_fills_placeholder():
    sb = StoreBuffer(8)
    sb.append_unresolved(2, addr=None)
    sb.resolve(2, addr=0x100, value=42)
    assert sb.forward(0x100, before_seq=5) == (42, 2)
    assert not sb.unresolved.any_below(10)


def test_resolve_unknown_seq_is_a_bug():
    sb = StoreBuffer(8)
    with pytest.raises(SimulatorInvariantError):
        sb.resolve(7, 0x100, 1)


def test_double_resolve_is_a_bug():
    sb = StoreBuffer(8)
    sb.append_unresolved(2, addr=None)
    sb.resolve(2, 0x100, 1)
    with pytest.raises(SimulatorInvariantError):
        sb.resolve(2, 0x100, 1)


def test_out_of_order_insert_keeps_seq_order():
    """A deferred store resolving late still sits at its seq position."""
    sb = StoreBuffer(8)
    sb.append_unresolved(2, addr=None)
    sb.append_resolved(5, 0x100, 50)
    sb.resolve(2, 0x100, 20)
    # A load at seq 4 must see the seq-2 store, not the seq-5 one.
    assert sb.forward(0x100, before_seq=4) == (20, 2)
    assert sb.forward(0x100, before_seq=6) == (50, 5)


def test_drain_below_returns_in_order_and_removes():
    sb = StoreBuffer(8)
    sb.append_resolved(1, 0x100, 1)
    sb.append_resolved(3, 0x108, 3)
    sb.append_resolved(5, 0x110, 5)
    drained = sb.drain_below(4)
    assert [(e.seq, e.addr) for e in drained] == [(1, 0x100), (3, 0x108)]
    assert len(sb) == 1
    assert sb.stats.drained == 2


def test_drain_unresolved_is_a_bug():
    sb = StoreBuffer(8)
    sb.append_unresolved(1, addr=None)
    with pytest.raises(SimulatorInvariantError):
        sb.drain_below(5)


def test_drain_all_and_clear():
    sb = StoreBuffer(8)
    sb.append_resolved(1, 0x100, 1)
    assert len(sb.drain_all()) == 1
    sb.append_resolved(2, 0x100, 2)
    sb.clear()
    assert len(sb) == 0
    assert sb.drain_all() == []


def test_duplicate_seq_is_a_bug():
    sb = StoreBuffer(8)
    sb.append_resolved(1, 0x100, 1)
    with pytest.raises(SimulatorInvariantError):
        sb.append_resolved(1, 0x108, 2)


def test_occupancy_histogram():
    sb = StoreBuffer(8)
    sb.append_resolved(1, 0x100, 1)
    sb.append_resolved(2, 0x108, 2)
    assert sb.occupancy.max == 2
