"""Global accounting invariants of the SST core, checked across
workloads that exercise commits, rollbacks and scout sessions."""

import pytest

from repro.config import SSTConfig
from repro.core import SSTCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from repro.workloads import (
    branchy_reduce,
    btree_lookup,
    graph_bfs,
    hash_join,
    scatter_update,
    store_stream,
)
from tests.conftest import small_hierarchy_config

WORKLOADS = [
    hash_join(table_words=1 << 11, probes=128),
    branchy_reduce(iterations=160, data_words=1 << 10),
    btree_lookup(array_words=1 << 10, lookups=32),
    store_stream(records=64, payload_words=6, table_words=1 << 10),
    scatter_update(table_words=1 << 10, updates=96, alias_per_1024=64),
    graph_bfs(vertices=128, avg_degree=3),
]

CONFIGS = [
    SSTConfig(),
    SSTConfig(checkpoints=1),
    SSTConfig(checkpoints=4, dq_size=8, sb_size=4),
    SSTConfig(bypass_unresolved_stores=False),
]


@pytest.mark.parametrize("program", WORKLOADS, ids=lambda p: p.name)
@pytest.mark.parametrize("config", CONFIGS,
                         ids=lambda c: f"{c.mode_name}-dq{c.dq_size}")
def test_every_speculative_instruction_is_accounted(program, config):
    """ahead issues == committed speculative + discarded: nothing is
    silently dropped or double-counted across commits and rollbacks."""
    hierarchy = MemoryHierarchy(small_hierarchy_config())
    core = SSTCore(program, hierarchy, config)
    result = core.run()
    verify_against_golden(result, program)
    stats = result.extra["sst"]
    assert stats.ahead_insts == (
        stats.committed_spec_insts + stats.discarded_insts
    )
    # Committed instruction total is normal + committed speculative.
    assert result.instructions == (
        stats.normal_insts + stats.committed_spec_insts
    )
    # Mode cycles partition the run exactly.
    assert sum(stats.mode_cycles.values()) == result.cycles
    # Replays never exceed deferrals plus re-execution after rollbacks.
    assert stats.replay_insts <= stats.ahead_insts


@pytest.mark.parametrize("program", WORKLOADS[:3], ids=lambda p: p.name)
def test_committed_count_matches_interpreter(program):
    from repro.isa.interpreter import Interpreter

    golden = Interpreter(program, max_steps=5_000_000)
    golden.run()
    hierarchy = MemoryHierarchy(small_hierarchy_config())
    result = SSTCore(program, hierarchy, SSTConfig()).run()
    assert result.instructions == golden.stats.instructions
