"""CLI failure modes exit non-zero with a one-line diagnostic, never a
traceback: missing perf baseline, numpy explicitly requested but
absent, and bad workload selections for `repro ensemble bench`."""

import pytest

from repro import cli
from repro.experiments import perf
from repro.sim import ensemble


def run_cli(argv, capsys):
    code = cli.main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_perf_report_missing_baseline_exits_2(tmp_path, monkeypatch,
                                              capsys):
    monkeypatch.setenv("REPRO_PERF_BASELINE",
                       str(tmp_path / "absent.json"))
    monkeypatch.setattr(
        perf, "measure",
        lambda tag="probe": {
            "schema": perf.REPORT_SCHEMA, "tag": tag, "entries": [],
            "aggregate": perf.aggregate([]),
        },
    )
    code, _, err = run_cli(
        ["perf", "report", "--out", str(tmp_path / "out.json"),
         "--compare-baseline"], capsys)
    assert code == 2
    assert "no committed baseline" in err
    assert "Traceback" not in err


def test_ensemble_bench_numpy_requested_but_absent(monkeypatch,
                                                   capsys):
    monkeypatch.setattr(ensemble, "numpy_available", lambda: False)
    code, _, err = run_cli(
        ["ensemble", "bench", "--backend", "numpy"], capsys)
    assert code == 2
    assert "requires numpy" in err
    assert "Traceback" not in err


@pytest.mark.parametrize("extra", [[], ["--timing"]])
def test_ensemble_bench_unknown_workload_exits_2(extra, capsys):
    pytest.importorskip("numpy")
    code, _, err = run_cli(
        ["ensemble", "bench", "--lanes", "2",
         "--workloads", "no-such-workload"] + extra, capsys)
    assert code == 2
    assert "no-such-workload" in err
    assert "Traceback" not in err


@pytest.mark.parametrize("extra", [[], ["--timing"]])
def test_ensemble_bench_empty_workload_selection_exits_2(extra,
                                                         capsys):
    pytest.importorskip("numpy")
    code, _, err = run_cli(
        ["ensemble", "bench", "--lanes", "2", "--workloads"] + extra,
        capsys)
    assert code == 2
    assert "no workloads selected" in err
    assert "Traceback" not in err


def test_experiments_run_jobs_garbage_env_exits_2(monkeypatch,
                                                  capsys):
    """A non-numeric REPRO_JOBS is a named diagnostic before any
    simulation starts, not a bare ValueError traceback."""
    monkeypatch.setenv("REPRO_JOBS", "many")
    code, _, err = run_cli(
        ["experiments", "run", "e1", "--smoke"], capsys)
    assert code == 2
    assert "REPRO_JOBS" in err
    assert "Traceback" not in err
