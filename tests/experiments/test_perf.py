"""Unit tests for repro.experiments.perf: the documented aggregate
semantics (wall-weighted sum-of-instructions over sum-of-wall, never a
mean of rates), the tracked speedup_vs_baseline metric, and the
run_perf_smoke regression gate (measure() monkeypatched — no
simulation here)."""

import json

import pytest

from repro.experiments import perf


def entry(machine, instructions, wall, stepped=0, skipped=0):
    row = {
        "machine": machine,
        "program": "p",
        "cycles": instructions,
        "instructions": instructions,
        "ipc": 1.0,
        "wall_seconds": wall,
        "insts_per_host_second": (round(instructions / wall)
                                  if wall else None),
        "sim_cycles_per_second": (round(instructions / wall)
                                  if wall else None),
    }
    if stepped or skipped:
        row["perf"] = {"cycles_stepped": stepped,
                       "cycles_skipped": skipped}
    return row


def payload_with(entries, tag="probe"):
    return {"schema": perf.REPORT_SCHEMA, "tag": tag,
            "entries": entries, "aggregate": perf.aggregate(entries)}


class TestAggregate:
    def test_per_machine_rate_is_wall_weighted(self):
        agg = perf.aggregate([entry("sst", 100, 1.0),
                              entry("sst", 300, 3.0)])
        sst = agg["machines"]["sst"]
        # 400 insts / 4.0 s — not mean(100/1, 300/3) either way here,
        # but the distinction matters below.
        assert sst["instructions"] == 400
        assert sst["wall_seconds"] == 4.0
        assert sst["insts_per_host_second"] == 100

    def test_total_is_not_a_mean_of_machine_rates(self):
        agg = perf.aggregate([entry("slow", 100, 1.0),
                              entry("fast", 1000, 1.0),
                              entry("fast", 1000, 1.0)])
        # Rates: slow=100/s over 1s, fast=1000/s over 2s.
        # Wall-weighted total: 2100 insts / 3.0 s = 700/s.
        # A mean of machine rates would say 550/s — wrong semantics.
        assert agg["total"]["insts_per_host_second"] == 700
        assert agg["total"]["instructions"] == 2100
        assert agg["total"]["wall_seconds"] == 3.0

    def test_skip_fraction_rollup(self):
        agg = perf.aggregate([entry("sst", 10, 1.0, stepped=30,
                                    skipped=70),
                              entry("sst", 10, 1.0, stepped=20,
                                    skipped=80)])
        assert agg["machines"]["sst"]["skip_fraction"] == 0.75

    def test_zero_wall_yields_none_not_crash(self):
        agg = perf.aggregate([entry("sst", 0, 0.0)])
        assert agg["machines"]["sst"]["insts_per_host_second"] is None
        assert agg["total"]["insts_per_host_second"] is None


class TestSpeedupVsBaseline:
    def test_ratios(self):
        baseline = payload_with([entry("sst", 100, 1.0),
                                 entry("inorder", 500, 1.0)],
                                tag="smoke")
        current = payload_with([entry("sst", 220, 1.0),
                                entry("inorder", 500, 1.0)])
        speedup = perf.speedup_vs_baseline(current, baseline)
        assert speedup["baseline_tag"] == "smoke"
        assert speedup["machines"]["sst"] == pytest.approx(2.2)
        assert speedup["machines"]["inorder"] == pytest.approx(1.0)
        # Aggregate is the wall-weighted total ratio: 720/600.
        assert speedup["aggregate"] == pytest.approx(1.2)

    def test_machines_missing_from_baseline_are_skipped(self):
        baseline = payload_with([entry("sst", 100, 1.0)])
        current = payload_with([entry("sst", 100, 1.0),
                                entry("brand-new", 100, 1.0)])
        speedup = perf.speedup_vs_baseline(current, baseline)
        assert set(speedup["machines"]) == {"sst"}

    @pytest.mark.parametrize("baseline", [
        None, {}, {"aggregate": None}, {"aggregate": {"total": {}}},
        "not a dict",
    ])
    def test_unusable_baseline_returns_none(self, baseline):
        current = payload_with([entry("sst", 100, 1.0)])
        assert perf.speedup_vs_baseline(current, baseline) is None


class TestRunPerfSmoke:
    @pytest.fixture
    def fake_measure(self, monkeypatch):
        # run_perf_smoke exports REPRO_BENCH_SMOKE=1; route it through
        # monkeypatch so teardown restores the outer environment.
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")

        def install(instructions):
            monkeypatch.setattr(
                perf, "measure",
                lambda tag="smoke": payload_with(
                    [entry("sst", instructions, 1.0)], tag=tag))
        return install

    def test_first_run_records_baseline(self, tmp_path, fake_measure):
        baseline = tmp_path / "BENCH_smoke.json"
        fake_measure(1000)
        assert perf.run_perf_smoke(baseline_path=baseline) == 0
        written = json.loads(baseline.read_text())
        assert written["aggregate"]["total"]["insts_per_host_second"] \
            == 1000
        assert "speedup_vs_baseline" not in written

    def test_within_tolerance_passes_and_embeds_speedup(
            self, tmp_path, fake_measure):
        baseline = tmp_path / "BENCH_smoke.json"
        fake_measure(1000)
        perf.run_perf_smoke(baseline_path=baseline)
        fake_measure(800)  # 0.8x, tolerance 0.30
        assert perf.run_perf_smoke(tolerance=0.30,
                                   baseline_path=baseline) == 0
        written = json.loads(baseline.read_text())
        assert written["speedup_vs_baseline"]["aggregate"] \
            == pytest.approx(0.8)

    def test_regression_beyond_tolerance_fails(self, tmp_path,
                                               fake_measure):
        baseline = tmp_path / "BENCH_smoke.json"
        fake_measure(1000)
        perf.run_perf_smoke(baseline_path=baseline)
        fake_measure(500)
        assert perf.run_perf_smoke(tolerance=0.30,
                                   baseline_path=baseline) == 1


def test_committed_baseline_is_valid_and_carries_the_speedup_metric():
    """The refreshed benchmarks/BENCH_smoke.json must parse, use the
    current schema, and record the tracked speedup number."""
    payload = perf.load_baseline()
    assert payload is not None, "benchmarks/BENCH_smoke.json missing"
    assert payload["schema"] == perf.REPORT_SCHEMA
    assert payload["aggregate"]["total"]["insts_per_host_second"] > 0
    speedup = payload.get("speedup_vs_baseline")
    assert speedup and speedup["aggregate"] is not None


def test_cli_perf_report_gates_against_baseline(tmp_path, monkeypatch):
    from repro import cli

    monkeypatch.setattr(
        perf, "measure",
        lambda tag="report": payload_with([entry("sst", 100, 1.0)],
                                          tag=tag))
    baseline = tmp_path / "BENCH_smoke.json"
    baseline.write_text(json.dumps(
        payload_with([entry("sst", 1000, 1.0)], tag="smoke")))
    monkeypatch.setenv("REPRO_PERF_BASELINE", str(baseline))
    out = tmp_path / "BENCH_probe.json"
    code = cli.main(["perf", "report", "--tag", "probe",
                     "--out", str(out), "--compare-baseline",
                     "--tolerance", "0.5"])
    assert code == 1  # 0.1x is far below 1 - 0.5
    written = json.loads(out.read_text())
    assert written["speedup_vs_baseline"]["aggregate"] \
        == pytest.approx(0.1)
    code = cli.main(["perf", "report", "--tag", "probe",
                     "--out", str(out), "--compare-baseline",
                     "--tolerance", "0.95"])
    assert code == 0


# ---------------------------------------------------------------------------
# The ensemble throughput section.
# ---------------------------------------------------------------------------


def ensemble_section(speedup, available=True):
    if not available:
        return {"available": False, "reason": "numpy not installed",
                "lanes": 64, "scale": "tiny"}
    return {
        "available": True, "backend": "numpy", "lanes": 64,
        "scale": "tiny", "workloads": {},
        "aggregate": {"instructions": 1000,
                      "scalar_insts_per_host_second": 1000,
                      "ensemble_insts_per_host_second":
                          round(1000 * speedup),
                      "speedup": speedup},
    }


class TestMeasureEnsemble:
    def test_section_structure_and_instruction_parity(self):
        pytest.importorskip("numpy")
        section = perf.measure_ensemble(lanes=4,
                                        workloads=["fp-stream"])
        assert section["available"]
        assert section["backend"] == "numpy"
        assert section["lanes"] == 4
        row = section["workloads"]["fp-stream"]
        assert row["instructions"] == \
            section["aggregate"]["instructions"]
        assert row["speedup"] == pytest.approx(
            row["scalar_wall_seconds"] / row["ensemble_wall_seconds"],
            rel=0.05)
        assert section["aggregate"]["ensemble_insts_per_host_second"] > 0

    def test_python_backend_can_be_forced(self):
        section = perf.measure_ensemble(lanes=2,
                                        workloads=["fp-stream"],
                                        backend="python")
        assert section["available"]
        assert section["backend"] == "python"

    def test_kill_switch_marks_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENSEMBLE", "0")
        section = perf.measure_ensemble(lanes=2)
        assert section == {"available": False,
                           "reason": "REPRO_ENSEMBLE=0",
                           "lanes": 2, "scale": "tiny"}


class TestEnsembleGate:
    @pytest.fixture
    def fake_measure(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")

        def install(ensemble):
            def fake(tag="smoke"):
                payload = payload_with([entry("sst", 1000, 1.0)],
                                       tag=tag)
                payload["ensemble"] = ensemble
                return payload
            monkeypatch.setattr(perf, "measure", fake)
        return install

    def test_speedup_above_floor_passes(self, tmp_path, fake_measure):
        fake_measure(ensemble_section(speedup=3.0))
        assert perf.run_perf_smoke(
            baseline_path=tmp_path / "BENCH_smoke.json",
            ensemble_min_speedup=1.5) == 0

    def test_speedup_below_floor_fails(self, tmp_path, fake_measure):
        fake_measure(ensemble_section(speedup=1.1))
        assert perf.run_perf_smoke(
            baseline_path=tmp_path / "BENCH_smoke.json",
            ensemble_min_speedup=1.5) == 1

    def test_unavailable_section_is_not_gated(self, tmp_path,
                                              fake_measure):
        fake_measure(ensemble_section(speedup=0.0, available=False))
        assert perf.run_perf_smoke(
            baseline_path=tmp_path / "BENCH_smoke.json",
            ensemble_min_speedup=1.5) == 0

    def test_render_includes_ensemble_line(self, fake_measure):
        payload = payload_with([entry("sst", 1000, 1.0)])
        payload["ensemble"] = ensemble_section(speedup=2.5)
        text = perf.render(payload)
        assert "ensemble N=64" in text
        assert "2.50x vs scalar" in text
        payload["ensemble"] = ensemble_section(0.0, available=False)
        assert "unavailable (numpy not installed)" in perf.render(payload)


def test_committed_baseline_carries_the_ensemble_section():
    payload = perf.load_baseline()
    assert payload is not None, "benchmarks/BENCH_smoke.json missing"
    section = payload.get("ensemble")
    assert isinstance(section, dict)
    if section["available"]:
        assert section["lanes"] == 64
        assert section["aggregate"]["speedup"] is not None


# ---------------------------------------------------------------------------
# The timing-ensemble throughput section.
# ---------------------------------------------------------------------------


def timing_section(speedup, available=True):
    if not available:
        return {"available": False, "reason": "numpy not installed",
                "lanes": 64, "scale": "tiny"}
    return {
        "available": True, "backend": "numpy", "machine": "inorder-2w",
        "lanes": 64, "scale": "tiny", "workloads": {},
        "aggregate": {"instructions": 1000,
                      "scalar_insts_per_host_second": 1000,
                      "ensemble_insts_per_host_second":
                          round(1000 * speedup),
                      "speedup": speedup},
    }


class TestMeasureTimingEnsemble:
    def test_section_structure_and_differential_guard(self):
        pytest.importorskip("numpy")
        section = perf.measure_timing_ensemble(lanes=4)
        assert section["available"]
        assert section["backend"] == "numpy"
        assert section["lanes"] == 4
        assert list(section["workloads"]) == \
            list(perf.DEFAULT_TIMING_WORKLOADS)
        row = section["workloads"]["compute-matmul"]
        assert row["instructions"] == \
            section["aggregate"]["instructions"]
        # Rates reproduce from the stored rounded walls exactly.
        assert row["speedup"] == round(
            row["scalar_wall_seconds"] / row["ensemble_wall_seconds"],
            4)

    def test_kill_switch_marks_unavailable(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", "0")
        section = perf.measure_timing_ensemble(lanes=2)
        assert section == {"available": False,
                           "reason": "REPRO_TIMING_ENSEMBLE=0",
                           "lanes": 2, "scale": "tiny"}

    def test_unknown_workload_is_a_repro_error(self):
        pytest.importorskip("numpy")
        with pytest.raises(perf.ReproError, match="no-such-workload"):
            perf.measure_timing_ensemble(
                lanes=2, workloads=["no-such-workload"])
        with pytest.raises(perf.ReproError, match="no workloads"):
            perf.measure_timing_ensemble(lanes=2, workloads=[])

    def test_measure_ensemble_rejects_unknown_workloads_too(self):
        with pytest.raises(perf.ReproError, match="no-such-workload"):
            perf.measure_ensemble(lanes=2, backend="python",
                                  workloads=["no-such-workload"])


class TestTimingEnsembleGate:
    @pytest.fixture
    def fake_measure(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")

        def install(timing):
            def fake(tag="smoke"):
                payload = payload_with([entry("sst", 1000, 1.0)],
                                       tag=tag)
                payload["timing_ensemble"] = timing
                return payload
            monkeypatch.setattr(perf, "measure", fake)
        return install

    def test_speedup_above_floor_passes(self, tmp_path, fake_measure):
        fake_measure(timing_section(speedup=2.4))
        assert perf.run_perf_smoke(
            baseline_path=tmp_path / "BENCH_smoke.json",
            timing_min_speedup=2.0) == 0

    def test_speedup_below_floor_fails(self, tmp_path, fake_measure):
        fake_measure(timing_section(speedup=1.4))
        assert perf.run_perf_smoke(
            baseline_path=tmp_path / "BENCH_smoke.json",
            timing_min_speedup=2.0) == 1

    def test_unavailable_section_is_not_gated(self, tmp_path,
                                              fake_measure):
        fake_measure(timing_section(0.0, available=False))
        assert perf.run_perf_smoke(
            baseline_path=tmp_path / "BENCH_smoke.json",
            timing_min_speedup=2.0) == 0

    def test_render_includes_timing_line(self, fake_measure):
        payload = payload_with([entry("sst", 1000, 1.0)])
        payload["timing_ensemble"] = timing_section(speedup=2.25)
        text = perf.render(payload)
        assert "timing ensemble N=64" in text
        assert "2.25x vs scalar" in text
        payload["timing_ensemble"] = timing_section(0.0,
                                                    available=False)
        assert "timing ensemble: unavailable" in perf.render(payload)


def test_committed_baseline_carries_the_timing_section():
    payload = perf.load_baseline()
    assert payload is not None, "benchmarks/BENCH_smoke.json missing"
    section = payload.get("timing_ensemble")
    assert isinstance(section, dict)
    if section["available"]:
        assert section["lanes"] == 64
        assert section["aggregate"]["speedup"] >= 2.0


# ---------------------------------------------------------------------------
# Snapshot self-consistency: rates reproduce from the stored walls.
# ---------------------------------------------------------------------------


class TestSnapshotRoundTrip:
    def test_entry_rates_derive_from_stored_wall(self):
        class FakeResult:
            core_name = "fake"
            program_name = "p"
            cycles = 12345
            instructions = 23456
            ipc = 1.9
            wall_seconds = 0.123456789
            extra = {}

        row = perf.perf_entry(FakeResult())
        assert row["wall_seconds"] == 0.1235
        assert row["insts_per_host_second"] == \
            round(row["instructions"] / row["wall_seconds"])
        assert row["sim_cycles_per_second"] == \
            round(row["cycles"] / row["wall_seconds"])

    def test_aggregate_rates_derive_from_stored_walls(self):
        entries = [entry("m1", 1000, 0.33335), entry("m1", 500, 0.1),
                   entry("m2", 2000, 0.70004)]
        agg = perf.aggregate(entries)
        for machine, rollup in agg["machines"].items():
            assert rollup["insts_per_host_second"] == round(
                rollup["instructions"] / rollup["wall_seconds"])
        total = agg["total"]
        assert total["wall_seconds"] == round(
            sum(r["wall_seconds"] for r in agg["machines"].values()),
            4)
        assert total["insts_per_host_second"] == round(
            total["instructions"] / total["wall_seconds"])

    def test_committed_snapshot_is_self_consistent(self):
        payload = perf.load_baseline()
        assert payload is not None
        for row in payload["entries"]:
            if row["wall_seconds"]:
                assert row["insts_per_host_second"] == round(
                    row["instructions"] / row["wall_seconds"]), row
        agg = payload["aggregate"]
        for rollup in agg["machines"].values():
            if rollup["wall_seconds"]:
                assert rollup["insts_per_host_second"] == round(
                    rollup["instructions"] / rollup["wall_seconds"])
        total = agg["total"]
        if total["wall_seconds"]:
            assert total["insts_per_host_second"] == round(
                total["instructions"] / total["wall_seconds"])
