"""The experiment engine, result documents, and the ``repro`` CLI:
run -> JSON document round-trip, expectation auditing of doctored
results, and schema validation."""

import copy
import json

import pytest

from repro import cli
from repro.experiments import (
    ExperimentEngine,
    ResultSchemaError,
    get,
    load_result_doc,
    run_experiment,
    validate_result_doc,
)


@pytest.fixture
def smoke_env(monkeypatch):
    """Pin the knobs the CLI mutates so nothing leaks between tests."""
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_JOBS", "1")


@pytest.fixture(scope="module")
def e4_doc(tmp_path_factory):
    """One real smoke run of e4, shared by the document tests."""
    results_dir = tmp_path_factory.mktemp("results")
    doc = run_experiment("e4", smoke=True, cache=None, write=True,
                         results_dir=results_dir)
    return doc, results_dir


# ---------------------------------------------------------------------------
# CLI round-trip.
# ---------------------------------------------------------------------------


def test_cli_run_round_trips_a_valid_document(smoke_env, tmp_path, capsys):
    code = cli.main(["experiments", "run", "e4", "--smoke", "--no-cache",
                     "--results-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "e4_dq_size" in out

    doc = load_result_doc("e4_dq_size", tmp_path)  # validates on load
    assert doc["experiment"]["id"] == "e4"
    assert doc["mode"] == "smoke"
    assert doc["points"], "no simulation points recorded"
    # The text table next to the document is exactly the rendered table.
    txt = (tmp_path / "e4_dq_size.txt").read_text()
    assert txt == doc["table"]["rendered"] + "\n"
    # Every recorded single-core point carries its cache fingerprint.
    assert all(point["key"] for point in doc["points"])


def test_cli_list_shows_all_experiments(capsys):
    assert cli.main(["experiments", "list", "--json"]) == 0
    listing = json.loads(capsys.readouterr().out)
    assert len(listing) == 19
    assert listing[0]["id"] == "e1"


def test_cli_report_reads_stored_documents(e4_doc, capsys):
    _, results_dir = e4_doc
    code = cli.main(["experiments", "report", "e4",
                     "--results-dir", str(results_dir)])
    assert code == 0
    assert "e4_dq_size" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment(smoke_env, tmp_path, capsys):
    code = cli.main(["experiments", "run", "e999",
                     "--results-dir", str(tmp_path)])
    assert code == 2
    assert "e999" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Engine output.
# ---------------------------------------------------------------------------


def test_engine_document_is_schema_valid(e4_doc):
    doc, _ = e4_doc
    validate_result_doc(doc)
    assert doc["schema"] == 1
    assert doc["experiment"]["name"] == "e4_dq_size"
    assert doc["table"]["rows"]
    assert doc["metrics"] == json.loads(json.dumps(doc["metrics"]))


def test_engine_expectations_match_spec(e4_doc):
    doc, _ = e4_doc
    spec = get("e4")
    assert [outcome["name"] for outcome in doc["expectations"]] == [
        expectation.name for expectation in spec.expectations
    ]
    assert doc["ok"] == all(
        outcome["passed"] for outcome in doc["expectations"]
    )


def test_engine_write_false_writes_nothing(tmp_path):
    engine = ExperimentEngine(smoke=True, cache=None, write=False,
                              results_dir=tmp_path)
    doc = engine.run("e4")
    assert doc["points"]
    assert list(tmp_path.iterdir()) == []


def test_expectations_fire_on_a_doctored_result(e4_doc):
    """Audit trail: re-checking a tampered document catches the tamper."""
    doc, _ = e4_doc
    spec = get("e4")
    honest = spec.check(doc["metrics"])
    assert all(outcome.passed for outcome in honest)

    doctored = copy.deepcopy(doc["metrics"])
    # e4's deep-DQ expectation: claim the largest DQ is slower.
    doctored["speedups"][-1] = 0.01
    outcomes = spec.check(doctored)
    assert not all(outcome.passed for outcome in outcomes)

    gutted = spec.check({})
    assert not any(outcome.passed for outcome in gutted)
    assert all(outcome.error for outcome in gutted)


# ---------------------------------------------------------------------------
# Validation rejects malformed documents.
# ---------------------------------------------------------------------------


def _valid_doc(e4_doc):
    doc, _ = e4_doc
    return copy.deepcopy(doc)


def test_validator_rejects_missing_field(e4_doc):
    doc = _valid_doc(e4_doc)
    del doc["metrics"]
    with pytest.raises(ResultSchemaError, match="metrics"):
        validate_result_doc(doc)


def test_validator_rejects_wrong_schema_version(e4_doc):
    doc = _valid_doc(e4_doc)
    doc["schema"] = 999
    with pytest.raises(ResultSchemaError, match="schema"):
        validate_result_doc(doc)


def test_validator_rejects_bad_mode(e4_doc):
    doc = _valid_doc(e4_doc)
    doc["mode"] = "warp"
    with pytest.raises(ResultSchemaError, match="mode"):
        validate_result_doc(doc)


def test_validator_rejects_malformed_point(e4_doc):
    doc = _valid_doc(e4_doc)
    del doc["points"][0]["cycles"]
    with pytest.raises(ResultSchemaError, match="points"):
        validate_result_doc(doc)


def test_load_rejects_missing_and_corrupt_files(tmp_path):
    with pytest.raises(ResultSchemaError, match="no result document"):
        load_result_doc("e4_dq_size", tmp_path)
    (tmp_path / "e4_dq_size.json").write_text("{not json")
    with pytest.raises(ResultSchemaError, match="not JSON"):
        load_result_doc("e4_dq_size", tmp_path)
