"""The experiment registry: every spec registered, ids unique, lookups
resolve, and the spec-module files on disk agree with the registry."""

import pathlib
import re

import pytest

import repro.experiments.spec as spec_module
from repro.experiments import (
    ExperimentRegistrationError,
    ExperimentSpec,
    by_tag,
    expect,
    get,
    list_specs,
)
from repro.experiments.spec import ExperimentLookupError

EXPECTED_COUNT = 19


def test_all_experiments_registered():
    specs = list_specs()
    assert len(specs) == EXPECTED_COUNT
    assert [spec.eid for spec in specs] == [
        f"e{n}" for n in range(1, EXPECTED_COUNT + 1)
    ]


def test_ids_slugs_and_names_unique():
    specs = list_specs()
    assert len({spec.eid for spec in specs}) == EXPECTED_COUNT
    assert len({spec.slug for spec in specs}) == EXPECTED_COUNT
    assert len({spec.name for spec in specs}) == EXPECTED_COUNT


def test_registry_matches_spec_modules_on_disk():
    """Every ``e*_*.py`` module registers exactly its own experiment.

    Module files zero-pad the number for directory ordering
    (``e04_dq_size.py``); the registered name does not (``e4_dq_size``).
    """
    package_dir = pathlib.Path(spec_module.__file__).parent
    on_disk = set()
    for path in package_dir.glob("e[0-9]*_*.py"):
        match = re.fullmatch(r"e0*(\d+)_([a-z0-9_]+)", path.stem)
        assert match, f"bad spec module name {path.name}"
        on_disk.add(f"e{match.group(1)}_{match.group(2)}")
    registered = {spec.name for spec in list_specs()}
    assert on_disk == registered


def test_get_resolves_id_name_and_case():
    assert get("e4").slug == "dq_size"
    assert get("e4_dq_size").eid == "e4"
    assert get("E4") is get("e4")


def test_get_unknown_raises_lookup_error():
    with pytest.raises(ExperimentLookupError, match="e999"):
        get("e999")


def test_by_tag_filters_in_order():
    sst = by_tag("sst")
    assert sst, "no experiments tagged 'sst'"
    assert all("sst" in spec.tags for spec in sst)
    assert [spec.number for spec in sst] == sorted(
        spec.number for spec in sst
    )
    assert by_tag("no_such_tag") == []


def test_every_spec_is_fully_described():
    for spec in list_specs():
        assert spec.title, spec.eid
        assert spec.tags, spec.eid
        assert spec.expectations, f"{spec.eid} has no expectations"
        for expectation in spec.expectations:
            assert expectation.name and expectation.description


def test_duplicate_registration_rejected():
    existing = get("e4")
    clone = ExperimentSpec(
        eid="e4", slug="other_slug", title="clone", build=lambda env: None,
    )
    with pytest.raises(ExperimentRegistrationError, match="duplicate"):
        spec_module.register(clone)
    assert get("e4") is existing


def test_bad_id_and_slug_rejected():
    with pytest.raises(ExperimentRegistrationError, match="id"):
        ExperimentSpec(eid="x4", slug="fine", title="t",
                       build=lambda env: None)
    with pytest.raises(ExperimentRegistrationError, match="slug"):
        ExperimentSpec(eid="e99", slug="Not Snake", title="t",
                       build=lambda env: None)


def test_expectation_evaluation_catches_doctored_metrics():
    probe = expect("positive", "value must be positive",
                   lambda m: m["value"] > 0)
    assert probe.evaluate({"value": 3}).passed
    missed = probe.evaluate({"value": -1})
    assert not missed.passed and missed.error is None
    # A doctored/missing metric is a failure with the error recorded,
    # not an exception.
    broken = probe.evaluate({})
    assert not broken.passed
    assert broken.error and "KeyError" in broken.error
