"""Every workload × every machine ends in the golden architectural
state.  This is the end-to-end version of the per-core unit checks."""

import pytest

from repro.config import (
    SSTConfig,
    CoreKind,
    MachineConfig,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.sim.runner import simulate
from repro.workloads import full_suite
from tests.conftest import small_hierarchy_config


def machines():
    hierarchy = small_hierarchy_config()
    return [
        inorder_machine(hierarchy),
        scout_machine(hierarchy),
        ea_machine(hierarchy),
        sst_machine(hierarchy),
        ooo_machine(hierarchy, rob_size=64),
        MachineConfig(core_kind=CoreKind.SST, hierarchy=hierarchy,
                      sst=SSTConfig(checkpoints=4, dq_size=8, sb_size=4),
                      name="sst-stressed"),
        MachineConfig(core_kind=CoreKind.SST, hierarchy=hierarchy,
                      sst=SSTConfig(bypass_unresolved_stores=False),
                      name="sst-conservative"),
    ]


@pytest.mark.parametrize("program", full_suite("tiny"),
                         ids=lambda program: program.name)
@pytest.mark.parametrize("machine", machines(),
                         ids=lambda machine: machine.name)
def test_workload_machine_golden(machine, program):
    simulate(machine, program, verify=True, max_instructions=5_000_000)
