"""Cross-core performance *shape* checks on the tiny suite — the
qualitative claims the paper's evaluation rests on, as assertions."""

import pytest

from repro.config import (
    ea_machine,
    inorder_machine,
    scout_machine,
    sst_machine,
)
from repro.sim.compare import compare_machines
from repro.stats.report import geomean
from repro.workloads import commercial_suite, pointer_chase
from tests.conftest import small_hierarchy_config


@pytest.fixture(scope="module")
def commercial_results():
    hierarchy = small_hierarchy_config(latency=200, mshr=32)
    configs = [
        inorder_machine(hierarchy),
        scout_machine(hierarchy),
        ea_machine(hierarchy),
        sst_machine(hierarchy),
    ]
    return {
        program.name: compare_machines(program, configs, verify=True)
        for program in commercial_suite("tiny")
    }


def test_speculation_never_loses_to_inorder(commercial_results):
    for name, results in commercial_results.items():
        baseline = results["inorder-2w"]
        for machine in ("scout-2w", "ea-2w", "sst-2w-2ckpt"):
            speedup = results[machine].speedup_over(baseline)
            assert speedup > 0.95, (name, machine, speedup)


def test_sst_is_best_on_geomean(commercial_results):
    def suite_geomean(machine):
        return geomean([
            results[machine].speedup_over(results["inorder-2w"])
            for results in commercial_results.values()
        ])

    scout = suite_geomean("scout-2w")
    ea = suite_geomean("ea-2w")
    sst = suite_geomean("sst-2w-2ckpt")
    assert sst > 1.3  # speculation pays off on miss-bound workloads
    assert sst >= ea * 0.98
    assert sst >= scout * 0.98


def test_retiring_speculation_beats_pure_scout(commercial_results):
    """EA keeps the work scout throws away; on the suite geomean it
    must not lose to scout."""
    ea = geomean([
        results["ea-2w"].speedup_over(results["inorder-2w"])
        for results in commercial_results.values()
    ])
    scout = geomean([
        results["scout-2w"].speedup_over(results["inorder-2w"])
        for results in commercial_results.values()
    ])
    assert ea >= scout * 0.95


def test_dependent_chain_defeats_runahead():
    """Single pointer chain: nothing can overlap dependent misses, so
    all machines land within ~20% of in-order."""
    hierarchy = small_hierarchy_config(latency=200)
    program = pointer_chase(chains=1, nodes_per_chain=128, hops=128,
                            name="chain1")
    results = compare_machines(
        program,
        [inorder_machine(hierarchy), sst_machine(hierarchy)],
        verify=True,
    )
    speedup = results["sst-2w-2ckpt"].speedup_over(results["inorder-2w"])
    assert speedup < 1.35


def test_mlp_scales_with_chain_count():
    """More independent chains -> more overlap -> bigger SST speedup."""
    hierarchy = small_hierarchy_config(latency=200, mshr=32)
    speedups = []
    for chains in (1, 4):
        program = pointer_chase(chains=chains, nodes_per_chain=128,
                                hops=96, name=f"chains{chains}")
        results = compare_machines(
            program,
            [inorder_machine(hierarchy), sst_machine(hierarchy)],
            verify=True,
        )
        speedups.append(
            results["sst-2w-2ckpt"].speedup_over(results["inorder-2w"])
        )
    assert speedups[1] > speedups[0] * 1.5
