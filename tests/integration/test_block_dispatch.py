"""Block dispatch must be invisible: every machine produces bit-identical
results (cycles, instructions, architectural state) with
``REPRO_BLOCK_DISPATCH`` on and off, on every workload generator.

This is the differential pin for the decode-once engine — the golden
and property suites check correctness against the interpreter; this one
checks the *timing* didn't move either."""

import pytest

from repro.isa import blockcache
from repro.isa.interpreter import Interpreter
from repro.sim.runner import simulate
from repro.workloads import full_suite
from tests.integration.test_golden_equivalence import machines

MAX_INSTRUCTIONS = 5_000_000


def _run(machine, program, monkeypatch, flag):
    monkeypatch.setenv(blockcache.ENV_FLAG, flag)
    return simulate(machine, program, verify=True,
                    max_instructions=MAX_INSTRUCTIONS)


@pytest.mark.parametrize("program", full_suite("tiny"),
                         ids=lambda program: program.name)
@pytest.mark.parametrize("machine", machines(),
                         ids=lambda machine: machine.name)
def test_block_dispatch_bit_identical(machine, program, monkeypatch):
    with_blocks = _run(machine, program, monkeypatch, "1")
    without = _run(machine, program, monkeypatch, "0")
    assert with_blocks.cycles == without.cycles
    assert with_blocks.instructions == without.instructions
    assert with_blocks.state.regs == without.state.regs
    assert with_blocks.state.memory == without.state.memory


@pytest.mark.parametrize("program", full_suite("tiny"),
                         ids=lambda program: program.name)
def test_interpreter_block_dispatch_bit_identical(program, monkeypatch):
    monkeypatch.setenv(blockcache.ENV_FLAG, "1")
    blocked = Interpreter(program)
    blocked.run()
    monkeypatch.setenv(blockcache.ENV_FLAG, "0")
    stepped = Interpreter(program)
    stepped.run()
    assert blocked.state.regs == stepped.state.regs
    assert blocked.state.memory == stepped.state.memory
    assert blocked.stats == stepped.stats
