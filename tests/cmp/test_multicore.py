"""Multiprogrammed multicore simulation over a shared L2/DRAM."""

import pytest

from repro.cmp import Multicore, build_shared_hierarchies
from repro.config import SSTConfig
from repro.errors import ConfigError
from repro.sim.runner import verify_against_golden
from repro.workloads import hash_join, matrix_multiply
from tests.conftest import small_hierarchy_config


def programs(n, **kwargs):
    return [
        hash_join(table_words=1 << 11, probes=96, seed=seed,
                  name=f"hj-{seed}", **kwargs)
        for seed in range(n)
    ]


def test_shared_hierarchies_alias_l2_only():
    hierarchies = build_shared_hierarchies(small_hierarchy_config(), 3)
    first, second, third = hierarchies
    assert second.l2 is first.l2
    assert third.dram is first.dram
    assert second.l1d is not first.l1d
    assert second.l1d_mshr is not first.l1d_mshr


def test_address_offsets_distinct():
    hierarchies = build_shared_hierarchies(small_hierarchy_config(), 3)
    offsets = {h.addr_offset for h in hierarchies}
    assert len(offsets) == 3


def test_single_core_multicore_equals_solo_run():
    """Quantum interleaving of one core must be cycle-exact."""
    from repro import simulate, sst_machine

    hierarchy = small_hierarchy_config()
    program = programs(1)[0]
    solo = simulate(sst_machine(hierarchy), program)
    for quantum in (50, 1000, 10**9):
        multi = Multicore(hierarchy, [SSTConfig()], [program],
                          quantum=quantum).run()
        assert multi.per_core[0].cycles == solo.cycles, quantum


def test_all_cores_golden_verified():
    progs = programs(4)
    result = Multicore(small_hierarchy_config(), [SSTConfig()] * 4,
                       progs, quantum=200).run()
    for core_result, program in zip(result.per_core, progs):
        verify_against_golden(core_result, program)


def test_heterogeneous_cores():
    """An SST core and a zero-checkpoint (in-order) core coexist."""
    progs = programs(2)
    result = Multicore(
        small_hierarchy_config(),
        [SSTConfig(checkpoints=2), SSTConfig(checkpoints=0)],
        progs, quantum=200,
    ).run()
    assert result.per_core[0].core_name.endswith("sst")
    assert result.per_core[1].core_name.endswith("inorder")
    # Same shared machine: the SST core finishes its copy first.
    assert result.per_core[0].cycles < result.per_core[1].cycles


def test_contention_slows_cores_but_raises_throughput():
    hierarchy = small_hierarchy_config()
    program = programs(1)[0]
    solo = Multicore(hierarchy, [SSTConfig()], [program]).run()
    quad = Multicore(hierarchy, [SSTConfig()] * 4, programs(4)).run()
    solo_cycles = solo.per_core[0].cycles
    assert all(r.cycles > solo_cycles for r in quad.per_core)  # contention
    assert quad.aggregate_ipc > solo.aggregate_ipc  # but more gets done
    assert quad.aggregate_ipc < 4 * solo.aggregate_ipc  # and not ideally


def test_different_length_programs():
    progs = [programs(1)[0], matrix_multiply(n=4, name="mm")]
    result = Multicore(small_hierarchy_config(), [SSTConfig()] * 2,
                       progs, quantum=100).run()
    assert result.per_core[0].instructions != result.per_core[1].instructions
    assert result.makespan == max(r.cycles for r in result.per_core)


def test_validation():
    hierarchy = small_hierarchy_config()
    with pytest.raises(ConfigError):
        Multicore(hierarchy, [], [], quantum=10)
    with pytest.raises(ConfigError):
        Multicore(hierarchy, [SSTConfig()], [], quantum=10)
    with pytest.raises(ConfigError):
        Multicore(hierarchy, [SSTConfig()], programs(1), quantum=0)
    with pytest.raises(ConfigError):
        build_shared_hierarchies(hierarchy, 0)


def test_result_accounting():
    progs = programs(2)
    result = Multicore(small_hierarchy_config(), [SSTConfig()] * 2,
                       progs, quantum=150).run()
    assert result.cores == 2
    assert result.total_instructions == sum(
        r.instructions for r in result.per_core
    )
    assert result.quantum == 150


def test_idle_quantum_skip_is_cycle_exact():
    """Telescoped idle quanta must not perturb any core's timing.

    ``max_cycles`` disables the fast-forward (the cap is checked at
    every quantum boundary), so a capped run gives the
    quantum-by-quantum reference schedule to compare against.
    """
    progs = programs(3)
    hierarchy = small_hierarchy_config()
    for quantum in (25, 200):
        fast = Multicore(hierarchy, [SSTConfig()] * 3, progs,
                         quantum=quantum).run()
        reference = Multicore(hierarchy, [SSTConfig()] * 3, progs,
                              quantum=quantum).run(max_cycles=10 ** 9)
        assert reference.idle_quanta_skipped == 0
        assert fast.idle_quanta_skipped > 0
        for skipped, stepped in zip(fast.per_core, reference.per_core):
            assert skipped.cycles == stepped.cycles
            assert skipped.instructions == stepped.instructions
            assert skipped.state.regs == stepped.state.regs
