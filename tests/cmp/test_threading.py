"""Shared-L1 thread contexts (the SMT-on-one-core model) and the
resumable-core quantum invariance it relies on."""

import pytest

from repro.cmp import Multicore, build_shared_hierarchies
from repro.config import SSTConfig
from repro.core import SSTCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from repro.workloads import hash_join
from tests.conftest import small_hierarchy_config


def test_share_l1_aliases_everything():
    hierarchies = build_shared_hierarchies(
        small_hierarchy_config(), 2, share_l1=True
    )
    first, second = hierarchies
    assert second.l1d is first.l1d
    assert second.l1i is first.l1i
    assert second.l1d_mshr is first.l1d_mshr
    assert second.l2 is first.l2
    # Displacement still distinguishes the threads' private data.
    assert first.addr_offset != second.addr_offset


def test_two_threads_share_cache_capacity():
    """Threads contending for one L1 run slower than cores with
    private L1s, everything else equal."""
    programs = [
        hash_join(table_words=1 << 11, probes=96, seed=seed,
                  name=f"hj-{seed}")
        for seed in range(2)
    ]
    config = [SSTConfig(width=1, checkpoints=0)] * 2
    private = Multicore(small_hierarchy_config(), config, programs).run()
    shared = Multicore(small_hierarchy_config(), config, programs,
                       share_l1=True).run()
    assert shared.aggregate_ipc <= private.aggregate_ipc * 1.01
    for result, program in zip(shared.per_core, programs):
        verify_against_golden(result, program)


def test_advance_quantum_invariance():
    """A single core's final cycle count must not depend on how its
    execution is chopped into quanta (the multicore model's soundness
    condition)."""
    program = hash_join(table_words=1 << 11, probes=96)
    reference = None
    for quantum in (17, 100, 999, 10**9):
        hierarchy = MemoryHierarchy(small_hierarchy_config())
        core = SSTCore(program, hierarchy, SSTConfig())
        while not core.advance(core.cycle + quantum):
            pass
        result = core.finalize()
        verify_against_golden(result, program)
        if reference is None:
            reference = result.cycles
        assert result.cycles == reference, quantum


def test_finalize_before_halt_rejected():
    program = hash_join(table_words=256, probes=8)
    core = SSTCore(program, MemoryHierarchy(small_hierarchy_config()),
                   SSTConfig())
    from repro.errors import SimulatorInvariantError

    with pytest.raises(SimulatorInvariantError, match="before HALT"):
        core.finalize()


def test_advance_after_halt_is_stable():
    program = hash_join(table_words=256, probes=8)
    core = SSTCore(program, MemoryHierarchy(small_hierarchy_config()),
                   SSTConfig())
    assert core.advance(None) is True
    cycles = core.finalize().cycles
    assert core.advance(10**9) is True  # idempotent
    assert core.finalize().cycles == cycles
