"""Direction predictors, BTB, RAS, and the composite BranchUnit."""

from repro.branch.predictors import (
    BimodalPredictor,
    BranchUnit,
    GSharePredictor,
    StaticPredictor,
    make_direction_predictor,
)
from repro.config import BranchPredictorConfig, PredictorKind


def unit(kind=PredictorKind.BIMODAL, **kwargs) -> BranchUnit:
    return BranchUnit(BranchPredictorConfig(kind=kind, **kwargs))


def test_static_predictors():
    assert StaticPredictor(True).predict(123) is True
    assert StaticPredictor(False).predict(123) is False


def test_bimodal_learns_a_bias():
    predictor = BimodalPredictor(table_bits=4)
    for _ in range(4):
        predictor.update(5, False)
    assert predictor.predict(5) is False
    for _ in range(4):
        predictor.update(5, True)
    assert predictor.predict(5) is True


def test_bimodal_counters_saturate():
    predictor = BimodalPredictor(table_bits=4)
    for _ in range(100):
        predictor.update(5, True)
    predictor.update(5, False)
    assert predictor.predict(5) is True  # one miss doesn't flip saturation


def test_gshare_distinguishes_history():
    predictor = GSharePredictor(table_bits=8, history_bits=4)
    # Alternating pattern at one PC: gshare can track it via history.
    for _ in range(64):
        taken = predictor.history & 1 == 0
        predictor.update(7, taken)
    correct = 0
    for _ in range(32):
        taken = predictor.history & 1 == 0
        correct += predictor.predict(7) == taken
        predictor.update(7, taken)
    assert correct >= 28  # near-perfect on a learnable pattern


def test_factory():
    for kind in PredictorKind:
        predictor = make_direction_predictor(
            BranchPredictorConfig(kind=kind)
        )
        assert predictor.predict(0) in (True, False)


def test_resolve_cond_counts_mispredicts():
    branch_unit = unit(kind=PredictorKind.ALWAYS_TAKEN)
    assert branch_unit.resolve_cond(0, taken=False) is True
    assert branch_unit.resolve_cond(0, taken=True) is False
    stats = branch_unit.stats
    assert stats.cond_predictions == 2
    assert stats.cond_mispredicts == 1
    assert stats.cond_accuracy == 0.5


def test_deferred_cond_uses_recorded_prediction():
    branch_unit = unit()
    predicted = branch_unit.predict_cond(3)
    mispredicted = branch_unit.resolve_deferred_cond(3, predicted, not predicted)
    assert mispredicted is True
    assert branch_unit.stats.cond_mispredicts == 1


def test_btb_indirect_learns_target():
    branch_unit = unit()
    assert branch_unit.resolve_indirect(9, target=42) is True  # cold
    assert branch_unit.resolve_indirect(9, target=42) is False  # learned
    assert branch_unit.resolve_indirect(9, target=43) is True  # changed


def test_ras_predicts_returns():
    branch_unit = unit()
    branch_unit.push_return(17)
    assert branch_unit.resolve_indirect(5, target=17, is_return=True) is False
    assert branch_unit.stats.ras_hits == 1


def test_ras_mismatch_counts():
    branch_unit = unit()
    branch_unit.push_return(17)
    assert branch_unit.resolve_indirect(5, target=99, is_return=True) is True
    assert branch_unit.stats.ras_misses == 1


def test_ras_bounded_depth():
    branch_unit = unit(ras_entries=2)
    for return_pc in (1, 2, 3):
        branch_unit.push_return(return_pc)
    # Entry 1 was pushed out; 3 then 2 remain.
    assert branch_unit.resolve_indirect(0, 3, is_return=True) is False
    assert branch_unit.resolve_indirect(0, 2, is_return=True) is False
    assert branch_unit.resolve_indirect(0, 1, is_return=True) is True  # BTB path


def test_predict_indirect_consumes_ras():
    branch_unit = unit()
    branch_unit.push_return(7)
    assert branch_unit.predict_indirect(0, is_return=True) == 7
    assert branch_unit.predict_indirect(0, is_return=True) is None  # empty now


def test_deferred_indirect_validation():
    branch_unit = unit()
    assert branch_unit.resolve_deferred_indirect(4, 10, 10) is False
    assert branch_unit.resolve_deferred_indirect(4, 10, 11) is True
    # And it trains the BTB with the actual target.
    assert branch_unit.predict_indirect(4) == 11


def test_mispredict_penalty_exposed():
    assert unit(mispredict_penalty=13).mispredict_penalty == 13
