"""Tournament predictor: chooser behaviour and end-to-end use."""

from repro.branch.predictors import (
    GSharePredictor,
    TournamentPredictor,
)
from repro.config import BranchPredictorConfig, PredictorKind
from repro.branch import make_direction_predictor


def train(predictor, pc, pattern, repeats=40):
    for _ in range(repeats):
        for taken in pattern:
            predictor.update(pc, taken)


def accuracy(predictor, pc, pattern, rounds=20):
    correct = 0
    total = 0
    for _ in range(rounds):
        for taken in pattern:
            correct += predictor.predict(pc) == taken
            predictor.update(pc, taken)
            total += 1
    return correct / total


def test_factory_builds_tournament():
    predictor = make_direction_predictor(
        BranchPredictorConfig(kind=PredictorKind.TOURNAMENT)
    )
    assert isinstance(predictor, TournamentPredictor)


def test_tracks_biased_branches_like_bimodal():
    predictor = TournamentPredictor(table_bits=8, history_bits=6)
    train(predictor, pc=5, pattern=[True])
    assert accuracy(predictor, 5, [True]) == 1.0


def test_tracks_patterns_like_gshare():
    predictor = TournamentPredictor(table_bits=8, history_bits=6)
    pattern = [True, True, False]
    train(predictor, pc=9, pattern=pattern)
    assert accuracy(predictor, 9, pattern) > 0.9


def test_chooser_moves_toward_winning_component():
    predictor = TournamentPredictor(table_bits=6, history_bits=4)
    pattern = [True, False]  # alternation: gshare territory
    train(predictor, pc=3, pattern=pattern, repeats=60)
    assert predictor.choice[3] >= 2  # chooser now favours gshare


def test_not_worse_than_gshare_on_mixed_branches():
    """Two branches — one biased, one patterned — at aliasing PCs:
    tournament should match or beat plain gshare overall."""
    pattern_a = [True] * 4  # strongly biased
    pattern_b = [True, False]  # alternating

    def score(predictor):
        total, correct = 0, 0
        state = {10: 0, 20: 0}
        for _ in range(400):
            for pc, pattern in ((10, pattern_a), (20, pattern_b)):
                taken = pattern[state[pc] % len(pattern)]
                state[pc] += 1
                correct += predictor.predict(pc) == taken
                predictor.update(pc, taken)
                total += 1
        return correct / total

    tournament = score(TournamentPredictor(table_bits=6, history_bits=5))
    gshare = score(GSharePredictor(table_bits=6, history_bits=5))
    assert tournament >= gshare - 0.02
    assert tournament > 0.9
