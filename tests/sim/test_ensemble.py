"""The vectorized ensemble backend's core contract: every lane of a
lockstep batch is bit-identical to a scalar golden-interpreter run —
registers, memory, PC, stats, and error strings — across the workload
suite, divergent control flow, faulting lanes, and step budgets; plus
the task layer's caching, chunking, and error-policy behavior."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter
from repro.sim.cache import ResultCache
from repro.sim.ensemble import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    EnsembleError,
    EnsembleInterpreter,
    EnsembleTask,
    EnsembleTaskError,
    ensemble_key,
    numpy_available,
    resolve_backend,
    run_ensemble,
)
from repro.sim.parallel import ParallelRunner
from repro.workloads.suite import WORKLOAD_FACTORIES, suite_params

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

LANES = 64


def lane_programs(name, lanes=LANES, scale="tiny"):
    kwargs = suite_params(scale)[name]
    return [
        WORKLOAD_FACTORIES[name](**kwargs, seed=100 + lane,
                                 name=f"{name}@lane{lane}")
        for lane in range(lanes)
    ]


def scalar_reference(program, max_steps=None):
    interp = (Interpreter(program) if max_steps is None
              else Interpreter(program, max_steps=max_steps))
    error = None
    try:
        interp.run()
    except Exception as exc:  # noqa: BLE001 - error text is the oracle
        error = f"{type(exc).__name__}: {exc}"
    return interp, error


def assert_lane_matches(outcome, program, max_steps=None):
    interp, error = scalar_reference(program, max_steps)
    assert outcome.error == error
    assert outcome.state.regs == interp.state.regs
    assert outcome.state.memory == interp.state.memory
    assert outcome.state.pc == interp.state.pc
    assert outcome.stats == interp.stats


# ---------------------------------------------------------------------------
# Differential bit-identity across the suite, N=64.
# ---------------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("workload", sorted(WORKLOAD_FACTORIES))
def test_every_lane_bit_identical_to_scalar(workload):
    programs = lane_programs(workload)
    outcomes = EnsembleInterpreter(programs, backend=BACKEND_NUMPY).run()
    assert len(outcomes) == LANES
    for program, outcome in zip(programs, outcomes):
        assert_lane_matches(outcome, program)


@needs_numpy
def test_python_backend_matches_numpy_backend():
    programs = lane_programs("int-branchy", lanes=8)
    vec = EnsembleInterpreter(programs, backend=BACKEND_NUMPY).run()
    ref = EnsembleInterpreter(programs, backend=BACKEND_PYTHON).run()
    for a, b in zip(vec, ref):
        assert a.error == b.error
        assert a.state.regs == b.state.regs
        assert a.state.memory == b.state.memory
        assert a.stats == b.stats


def test_python_backend_matches_scalar_without_numpy_requirement():
    programs = lane_programs("fp-stream", lanes=4)
    outcomes = EnsembleInterpreter(programs, backend=BACKEND_PYTHON).run()
    for program, outcome in zip(programs, outcomes):
        assert_lane_matches(outcome, program)


# ---------------------------------------------------------------------------
# Backend selection and the kill switch.
# ---------------------------------------------------------------------------


def test_kill_switch_restores_scalar_path(monkeypatch):
    monkeypatch.setenv("REPRO_ENSEMBLE", "0")
    assert resolve_backend(None) == BACKEND_PYTHON


@needs_numpy
def test_explicit_numpy_request_overrides_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_ENSEMBLE", "0")
    assert resolve_backend(BACKEND_NUMPY) == BACKEND_NUMPY


@needs_numpy
def test_default_backend_is_numpy_when_available(monkeypatch):
    monkeypatch.delenv("REPRO_ENSEMBLE", raising=False)
    assert resolve_backend(None) == BACKEND_NUMPY


def test_unknown_backend_rejected():
    with pytest.raises(EnsembleError, match="unknown ensemble backend"):
        resolve_backend("cuda")


# ---------------------------------------------------------------------------
# Lane contract.
# ---------------------------------------------------------------------------


def test_shape_mismatch_rejected():
    a = lane_programs("fp-stream", lanes=1)[0]
    b = lane_programs("int-branchy", lanes=1)[0]
    with pytest.raises(EnsembleError, match="shape"):
        EnsembleInterpreter([a, b])


def test_empty_ensemble_rejected():
    with pytest.raises(EnsembleError, match="at least one lane"):
        EnsembleInterpreter([])


# ---------------------------------------------------------------------------
# Faulting lanes: isolated, bit-exact error text, healthy lanes clean.
# ---------------------------------------------------------------------------

# r1 (the load address) comes from the data image, so lanes share one
# code shape while individual lanes fault: misaligned (lane 1), or load
# from an unmapped page far outside the image (still returns 0 in the
# sparse model, lane 2), while lanes 0/3 stay healthy.
FAULTY_ASM = """
    movi r2, 0x2000
    ld   r1, 0(r2)
    ld   r3, 0(r1)
    addi r4, r3, 1
    halt
"""


def _faulty_programs():
    from repro.isa.program import DataWord, Program

    base = assemble(FAULTY_ASM, name="faulty")
    addr_by_lane = [0x2008, 0x2004 + 1, 0x7000000, 0x2000]
    return [
        Program(base.instructions, base.labels,
                [DataWord(0x2000, addr), DataWord(0x2008, 9)],
                name=f"faulty@lane{lane}")
        for lane, addr in enumerate(addr_by_lane)
    ]


@pytest.mark.parametrize(
    "backend",
    [pytest.param(BACKEND_NUMPY, marks=needs_numpy), BACKEND_PYTHON])
def test_faulting_lane_is_isolated_and_bit_exact(backend):
    programs = _faulty_programs()
    outcomes = EnsembleInterpreter(programs, backend=backend).run()
    assert not outcomes[1].ok  # the misaligned lane
    for program, outcome in zip(programs, outcomes):
        assert_lane_matches(outcome, program)


@pytest.mark.parametrize(
    "backend",
    [pytest.param(BACKEND_NUMPY, marks=needs_numpy), BACKEND_PYTHON])
@pytest.mark.parametrize("budget", [3, 17, 100])
def test_step_budget_exhaustion_matches_scalar(backend, budget):
    programs = lane_programs("int-branchy", lanes=6)
    outcomes = EnsembleInterpreter(
        programs, max_steps=budget, backend=backend).run()
    for program, outcome in zip(programs, outcomes):
        assert_lane_matches(outcome, program, max_steps=budget)


# ---------------------------------------------------------------------------
# run_ensemble: caching, chunking, error policy.
# ---------------------------------------------------------------------------


def test_run_ensemble_results_in_lane_order(tmp_path):
    programs = lane_programs("fp-stream", lanes=6)
    results = run_ensemble(programs, backend=BACKEND_PYTHON)
    assert [r.program_name for r in results] == [
        p.name for p in programs
    ]
    interp, _ = scalar_reference(programs[3])
    assert results[3].state.regs == interp.state.regs
    assert results[3].instructions == interp.stats.instructions


def test_run_ensemble_warm_cache_skips_execution(tmp_path, monkeypatch):
    programs = lane_programs("fp-stream", lanes=5)
    cache = ResultCache(tmp_path)
    first = run_ensemble(programs, cache=cache, backend=BACKEND_PYTHON)
    assert all(r is not None for r in first)

    import repro.sim.ensemble as ensemble_mod

    def boom(payload):
        raise AssertionError("warm ensemble must not execute")

    monkeypatch.setattr(ensemble_mod, "_execute_chunk", boom)
    warm = run_ensemble(programs, cache=cache, backend=BACKEND_PYTHON)
    for a, b in zip(first, warm):
        assert a.state.regs == b.state.regs
        assert a.state.memory == b.state.memory


def test_run_ensemble_mixed_batch_executes_only_cold_lanes(tmp_path):
    programs = lane_programs("fp-stream", lanes=6)
    cache = ResultCache(tmp_path)
    run_ensemble(programs[:3], cache=cache, backend=BACKEND_PYTHON)
    warm_hits = cache.stats.hits
    results = run_ensemble(programs, cache=cache, backend=BACKEND_PYTHON)
    assert cache.stats.hits == warm_hits + 3  # the three warm lanes
    assert all(r is not None for r in results)


def test_run_ensemble_on_error_raise_names_failed_lanes():
    programs = _faulty_programs()
    with pytest.raises(EnsembleTaskError, match=r"lane 1"):
        run_ensemble(programs, backend=BACKEND_PYTHON)


def test_run_ensemble_on_error_skip_leaves_none_holes():
    programs = _faulty_programs()
    results = run_ensemble(programs, backend=BACKEND_PYTHON,
                           on_error="skip")
    assert results[1] is None
    assert all(results[i] is not None for i in (0, 2, 3))


def test_run_ensemble_rejects_bad_on_error():
    programs = lane_programs("fp-stream", lanes=2)
    with pytest.raises(EnsembleError, match="on_error"):
        run_ensemble(programs, on_error="ignore")


def test_run_ensemble_chunks_by_lane_width(monkeypatch):
    programs = lane_programs("fp-stream", lanes=7)
    import repro.sim.ensemble as ensemble_mod

    chunk_sizes = []
    real = ensemble_mod._execute_chunk

    def spy(payload):
        chunk_sizes.append(len(payload[0]))
        return real(payload)

    monkeypatch.setattr(ensemble_mod, "_execute_chunk", spy)
    run_ensemble(programs, lanes=3, jobs=1, backend=BACKEND_PYTHON)
    assert chunk_sizes == [3, 3, 1]


def test_run_ensemble_lane_width_from_env(monkeypatch):
    programs = lane_programs("fp-stream", lanes=4)
    import repro.sim.ensemble as ensemble_mod

    chunk_sizes = []
    real = ensemble_mod._execute_chunk

    def spy(payload):
        chunk_sizes.append(len(payload[0]))
        return real(payload)

    monkeypatch.setattr(ensemble_mod, "_execute_chunk", spy)
    monkeypatch.setenv("REPRO_ENSEMBLE_LANES", "2")
    run_ensemble(programs, jobs=1, backend=BACKEND_PYTHON)
    assert chunk_sizes == [2, 2]


def test_invalid_lane_width_rejected(monkeypatch):
    programs = lane_programs("fp-stream", lanes=2)
    monkeypatch.setenv("REPRO_ENSEMBLE_LANES", "zero")
    with pytest.raises(ConfigError):
        run_ensemble(programs, backend=BACKEND_PYTHON)
    with pytest.raises(EnsembleError, match="lanes"):
        run_ensemble(programs, lanes=0, backend=BACKEND_PYTHON)


def test_ensemble_key_is_per_lane_program():
    a, b = lane_programs("fp-stream", lanes=2)
    assert ensemble_key(a) != ensemble_key(b)
    assert ensemble_key(a) == ensemble_key(a)
    assert ensemble_key(a, max_steps=10) != ensemble_key(a)


# ---------------------------------------------------------------------------
# ParallelRunner integration.
# ---------------------------------------------------------------------------


def test_parallel_runner_run_ensemble(tmp_path):
    programs = lane_programs("fp-stream", lanes=4)
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    task = EnsembleTask(programs=tuple(programs), max_steps=1_000_000)
    results = runner.run_ensemble(task, backend=BACKEND_PYTHON)
    assert [r.program_name for r in results] == [
        p.name for p in programs
    ]
    # Second run restores every lane from the runner's cache.
    warm = runner.run_ensemble(task, backend=BACKEND_PYTHON)
    assert runner.cache.stats.hits >= len(programs)
    for a, b in zip(results, warm):
        assert a.state.regs == b.state.regs
