"""The no-numpy story: with the import absent the ensemble API keeps
working through the pure-Python lane loop, auto-selection degrades
silently, and only an *explicit* numpy request errors — with install
guidance, as an ImportError subclass."""

from __future__ import annotations

import pytest

import repro.sim.ensemble as ensemble_mod
from repro.isa.interpreter import Interpreter
from repro.sim.ensemble import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    EnsembleDependencyError,
    EnsembleInterpreter,
    resolve_backend,
    run_ensemble,
)
from repro.workloads.suite import WORKLOAD_FACTORIES, suite_params


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setattr(ensemble_mod, "_np", None)


def lane_programs(name, lanes):
    kwargs = suite_params("tiny")[name]
    return [
        WORKLOAD_FACTORIES[name](**kwargs, seed=100 + lane,
                                 name=f"{name}@lane{lane}")
        for lane in range(lanes)
    ]


def test_numpy_available_reflects_import(no_numpy):
    assert not ensemble_mod.numpy_available()


def test_auto_select_falls_back_to_python(no_numpy, monkeypatch):
    monkeypatch.delenv("REPRO_ENSEMBLE", raising=False)
    assert resolve_backend(None) == BACKEND_PYTHON


def test_explicit_numpy_request_raises_with_guidance(no_numpy):
    with pytest.raises(EnsembleDependencyError,
                       match=r"pip install 'repro\[ensemble\]'"):
        resolve_backend(BACKEND_NUMPY)
    # The dependency error doubles as an ImportError for generic
    # optional-dependency handling.
    with pytest.raises(ImportError):
        resolve_backend(BACKEND_NUMPY)


def test_fallback_runs_bit_identical_to_scalar(no_numpy):
    programs = lane_programs("int-branchy", lanes=4)
    ensemble = EnsembleInterpreter(programs)
    assert ensemble.backend == BACKEND_PYTHON
    outcomes = ensemble.run()
    for program, outcome in zip(programs, outcomes):
        interp = Interpreter(program)
        interp.run()
        assert outcome.ok
        assert outcome.state.regs == interp.state.regs
        assert outcome.state.memory == interp.state.memory
        assert outcome.stats == interp.stats


def test_run_ensemble_works_without_numpy(no_numpy):
    programs = lane_programs("fp-stream", lanes=3)
    results = run_ensemble(programs)
    assert [r.program_name for r in results] == [p.name for p in programs]


def test_measure_ensemble_reports_unavailable(no_numpy):
    from repro.experiments.perf import measure_ensemble

    section = measure_ensemble(lanes=2)
    assert section == {
        "available": False,
        "reason": "numpy not installed",
        "lanes": 2,
        "scale": "tiny",
    }


def test_timing_ensemble_ineligible_without_numpy(monkeypatch):
    """Without numpy the timing engine declares itself ineligible and
    sweeps run scalar: results are unchanged, availability is honest."""
    import repro.sim.timing_ensemble as te
    from repro.config import inorder_machine
    from repro.experiments import perf
    from repro.sim.parallel import ParallelRunner, SimTask

    monkeypatch.setattr(te, "_np", None)
    config = inorder_machine()
    assert not te.timing_ensemble_eligible(config)
    with pytest.raises(ensemble_mod.EnsembleError, match="numpy"):
        te.run_timing_ensemble(config, lane_programs("fp-stream", 2))

    # The runner silently takes the scalar path for every point.
    tasks = [SimTask(config=config, program=p)
             for p in lane_programs("fp-stream", 3)]
    outcomes = ParallelRunner(1).run_outcomes(tasks)
    assert all(o.ok for o in outcomes)

    # And perf snapshots stay writable, marking the section absent.
    monkeypatch.setattr(ensemble_mod, "_np", None)
    section = perf.measure_timing_ensemble(lanes=2)
    assert section == {"available": False,
                       "reason": "numpy not installed",
                       "lanes": 2, "scale": "tiny"}
