"""REPRO_FAULT_INJECT: spec grammar, deterministic fault decisions,
corrupt-cache injection end-to-end, and the acceptance property that a
faulty sweep's measured results are bit-identical to a clean one."""

import json

import pytest

from repro.config import inorder_machine, sst_machine
from repro.errors import ConfigError
from repro.sim.cache import ResultCache
from repro.sim.faults import (
    EVERY_ATTEMPT,
    FaultPlan,
    fault_plan_from_env,
    parse_fault_spec,
    reset_fault_state,
    should_corrupt_store,
)
from repro.sim.parallel import ParallelRunner, SimTask
from repro.sim.resilience import RetryPolicy
from repro.workloads import hash_join, pointer_chase
from tests.conftest import small_hierarchy_config

FAST_RETRY = RetryPolicy(retries=3, backoff_base=0.0)


@pytest.fixture(autouse=True)
def _fresh_fault_state(monkeypatch):
    """Each test pins its own fault spec; an ambient one (the CI
    fault-injection matrix) must not stack on top, and the
    corrupt-cache store counter must start from zero."""
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


@pytest.fixture(scope="module")
def programs():
    return [hash_join(table_words=256, probes=32),
            pointer_chase(chains=2, nodes_per_chain=64, hops=40)]


def _matrix(programs):
    return [SimTask(config=config, program=program)
            for program in programs
            for config in (inorder_machine(small_hierarchy_config()),
                           sst_machine(small_hierarchy_config()))]


# ---------------------------------------------------------------------------
# Spec grammar.
# ---------------------------------------------------------------------------


def test_parse_full_spec():
    plan = parse_fault_spec("crash:0.1,hang:e2/btree,corrupt-cache:3")
    assert plan.crash_prob == 0.1
    assert plan.crash_attempts == 1
    assert plan.hang_match == "e2/btree"
    assert plan.hang_attempts == 1
    assert plan.corrupt_every == 3


def test_parse_attempt_scopes():
    plan = parse_fault_spec("crash:1@all,hang:x@4")
    assert plan.crash_attempts == EVERY_ATTEMPT
    assert plan.hang_attempts == 4


def test_parse_rejects_bad_specs():
    for bad in ("crash", "crash:", "crash:lots", "crash:0", "crash:1.5",
                "crash:0.5@zero", "crash:0.5@0", "hang:",
                "corrupt-cache:x", "corrupt-cache:0", "explode:1"):
        with pytest.raises(ConfigError, match="REPRO_FAULT_INJECT"):
            parse_fault_spec(bad)


def test_empty_spec_and_env(monkeypatch):
    assert parse_fault_spec("") == FaultPlan()
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    assert fault_plan_from_env() is None
    monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:0.5")
    assert fault_plan_from_env().crash_prob == 0.5


# ---------------------------------------------------------------------------
# Deterministic decisions.
# ---------------------------------------------------------------------------


def test_crash_decision_is_deterministic_per_label():
    plan = parse_fault_spec("crash:0.5")
    decisions = {label: plan.should_crash(label, 1)
                 for label in (f"machine/prog{i}" for i in range(64))}
    again = {label: plan.should_crash(label, 1)
             for label in decisions}
    assert decisions == again
    assert any(decisions.values()) and not all(decisions.values())
    # First-attempt-only by default: retries always recover.
    assert not any(plan.should_crash(label, 2) for label in decisions)


def test_crash_probability_one_dooms_everyone():
    assert parse_fault_spec("crash:1").should_crash("anything", 1)
    assert not parse_fault_spec("crash:1").should_crash("anything", 2)
    assert parse_fault_spec("crash:1@all").should_crash("anything", 99)


def test_hang_matches_label_substring():
    plan = parse_fault_spec("hang:btree")
    assert plan.should_hang("sst/e2-btree-lookup", 1)
    assert not plan.should_hang("sst/hash-join", 1)
    assert not plan.should_hang("sst/e2-btree-lookup", 2)


def test_corrupt_store_schedule(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt-cache:3")
    schedule = [should_corrupt_store() for _ in range(6)]
    assert schedule == [False, False, True, False, False, True]
    monkeypatch.delenv("REPRO_FAULT_INJECT")
    assert not should_corrupt_store()


# ---------------------------------------------------------------------------
# Corrupt-cache injection end-to-end.
# ---------------------------------------------------------------------------


def test_corrupt_cache_injection_quarantined_on_reload(
        tmp_path, programs, monkeypatch):
    task = SimTask(config=sst_machine(small_hierarchy_config()),
                   program=programs[0], verify=True)

    monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt-cache:1")
    cache = ResultCache(tmp_path)
    cold = ParallelRunner(jobs=1, cache=cache).run_outcomes([task])
    assert cold[0].ok and not cold[0].cached
    key = cache.key(task.config, task.program, task.max_instructions)
    # The injected store wrote a truncated payload...
    with pytest.raises(json.JSONDecodeError):
        json.loads((tmp_path / f"{key}.json").read_text())

    # ...which a later run detects, treats as a miss, and re-simulates
    # (results identical to the cold run), then re-stores a sound entry.
    monkeypatch.delenv("REPRO_FAULT_INJECT")
    warm_cache = ResultCache(tmp_path)
    warm = ParallelRunner(jobs=1, cache=warm_cache).run_outcomes([task])
    assert warm[0].ok and not warm[0].cached
    assert warm[0].result == cold[0].result
    assert warm_cache.stats.invalid >= 1
    assert warm_cache.load(key) == warm[0].result


def test_fsck_detects_injected_corruption(tmp_path, programs, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt-cache:2")
    cache = ResultCache(tmp_path)
    tasks = _matrix(programs)
    ParallelRunner(jobs=1, cache=cache).run_outcomes(tasks)
    report = ResultCache(tmp_path).fsck()
    assert report.scanned == len(tasks)
    assert report.corrupt == len(tasks) // 2  # every 2nd store sabotaged
    assert report.ok == len(tasks) - report.corrupt
    assert len(ResultCache(tmp_path)) == report.ok


# ---------------------------------------------------------------------------
# Acceptance: injected faults never change measured results.
# ---------------------------------------------------------------------------


def test_crash_injected_sweep_bit_identical_to_clean_run(
        programs, monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    clean = ParallelRunner(jobs=2).run(_matrix(programs))

    monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:0.5")
    faulty = ParallelRunner(jobs=2, retry_policy=FAST_RETRY) \
        .run_outcomes(_matrix(programs))
    assert all(outcome.ok for outcome in faulty)
    # Retries recovered at least one injected crash...
    assert any(outcome.attempts > 1 for outcome in faulty)
    # ...and recovery is invisible in the measurements: cycle counts
    # (and the full results) are bit-identical to the clean run.
    for result, outcome in zip(clean, faulty):
        assert outcome.result.cycles == result.cycles
        assert outcome.result == result


def test_hang_injected_sweep_bit_identical_to_clean_run(
        programs, monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    clean = ParallelRunner(jobs=2).run(_matrix(programs))

    monkeypatch.setenv("REPRO_FAULT_INJECT", f"hang:{programs[0].name}")
    faulty = ParallelRunner(jobs=2, timeout=1.0,
                            retry_policy=FAST_RETRY) \
        .run_outcomes(_matrix(programs))
    assert all(outcome.ok for outcome in faulty)
    assert any(outcome.attempts > 1 for outcome in faulty)
    for result, outcome in zip(clean, faulty):
        assert outcome.result == result
