"""Content-addressed result cache: key stability, invalidation, codec
round-trips, and warm-cache reuse with zero re-simulation."""

import dataclasses

import pytest

import repro.sim.cache as cache_mod
from repro.config import inorder_machine, sst_machine
from repro.sim.cache import (
    ResultCache,
    cache_enabled_by_env,
    decode_value,
    encode_value,
    result_key,
)
from repro.sim.parallel import ParallelRunner, SimTask
from repro.sim.runner import simulate
from repro.workloads import hash_join
from tests.conftest import small_hierarchy_config


@pytest.fixture
def program():
    return hash_join(table_words=256, probes=48)


@pytest.fixture
def config():
    return sst_machine(small_hierarchy_config())


# ---------------------------------------------------------------------------
# Key derivation.
# ---------------------------------------------------------------------------


def test_key_is_stable_across_rebuilds(config, program):
    """Identical inputs rebuilt from scratch hash to the same key."""
    same_config = sst_machine(small_hierarchy_config())
    same_program = hash_join(table_words=256, probes=48)
    assert result_key(config, program, 1000) == \
        result_key(same_config, same_program, 1000)


def test_key_changes_with_any_input(config, program):
    base = result_key(config, program, 1000)
    other_config = dataclasses.replace(
        config, sst=dataclasses.replace(config.sst, dq_size=7))
    other_program = hash_join(table_words=256, probes=49)
    assert result_key(other_config, program, 1000) != base
    assert result_key(config, other_program, 1000) != base
    assert result_key(config, program, 1001) != base


def test_key_changes_with_schema_version(config, program, monkeypatch):
    base = result_key(config, program, 1000)
    monkeypatch.setattr(cache_mod, "SIM_SCHEMA_VERSION",
                        cache_mod.SIM_SCHEMA_VERSION + 1)
    assert result_key(config, program, 1000) != base


def test_canonicalize_distinguishes_types():
    assert cache_mod.canonicalize(1) != cache_mod.canonicalize("1")
    assert cache_mod.canonicalize(True) != cache_mod.canonicalize(1)
    assert cache_mod.canonicalize(1.0) != cache_mod.canonicalize(1)
    assert cache_mod.canonicalize(None) != cache_mod.canonicalize("none")


def test_program_fingerprint_ignores_labels_not_content(program):
    other = hash_join(table_words=256, probes=48)
    assert program.fingerprint() == other.fingerprint()
    different = hash_join(table_words=256, probes=48, seed=99)
    assert program.fingerprint() != different.fingerprint()


# ---------------------------------------------------------------------------
# Codec round-trip.
# ---------------------------------------------------------------------------


def test_result_roundtrips_through_codec(config, program):
    result = simulate(config, program, verify=True)
    restored = decode_value(encode_value(result))
    assert restored == result
    assert restored.extra["sst"] == result.extra["sst"]
    assert restored.ipc == result.ipc


def test_roundtrip_covers_all_core_kinds(program):
    for machine in (inorder_machine(small_hierarchy_config()),
                    sst_machine(small_hierarchy_config())):
        result = simulate(machine, program)
        assert decode_value(encode_value(result)) == result


# ---------------------------------------------------------------------------
# The on-disk cache.
# ---------------------------------------------------------------------------


def test_store_then_load(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    result = simulate(config, program)
    key = cache.key(config, program, 1_000_000)
    assert cache.load(key) is None
    cache.store(key, result)
    assert len(cache) == 1
    assert cache.load(key) == result
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_corrupt_entry_is_a_miss(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    key = cache.key(config, program, 1000)
    (tmp_path / f"{key}.json").write_text("{not json")
    assert cache.load(key) is None
    assert cache.stats.invalid == 1


def test_schema_bump_orphans_old_entries(tmp_path, config, program,
                                         monkeypatch):
    cache = ResultCache(tmp_path)
    result = simulate(config, program)
    old_key = cache.key(config, program, 1_000_000)
    cache.store(old_key, result)

    monkeypatch.setattr(cache_mod, "SIM_SCHEMA_VERSION",
                        cache_mod.SIM_SCHEMA_VERSION + 1)
    # The new schema addresses a different key entirely...
    assert cache.key(config, program, 1_000_000) != old_key
    # ...and even a forced load of the old file refuses the stale schema.
    assert cache.load(old_key) is None
    assert cache.stats.invalid == 1


def test_clear_removes_entries(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    cache.store(cache.key(config, program, 1000),
                simulate(config, program))
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cache_enabled_by_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert cache_enabled_by_env()
    for off in ("0", "off", "false", "no"):
        monkeypatch.setenv("REPRO_CACHE", off)
        assert not cache_enabled_by_env()
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert cache_enabled_by_env()


# ---------------------------------------------------------------------------
# Warm-cache runs do not simulate at all.
# ---------------------------------------------------------------------------


def test_warm_run_does_zero_resimulation(tmp_path, program, monkeypatch):
    configs = [inorder_machine(small_hierarchy_config()),
               sst_machine(small_hierarchy_config())]
    tasks = [SimTask(config=config, program=program) for config in configs]

    cache = ResultCache(tmp_path)
    cold = ParallelRunner(jobs=1, cache=cache).run(tasks)
    assert cache.stats.stores == len(tasks)

    # Any attempt to simulate on the warm pass is a test failure.
    def _boom(*args, **kwargs):
        raise AssertionError("warm cache run re-simulated a point")

    monkeypatch.setattr("repro.sim.parallel.simulate", _boom)
    warm_cache = ResultCache(tmp_path)
    runner = ParallelRunner(jobs=1, cache=warm_cache)
    outcomes = runner.run_outcomes(tasks)
    assert all(outcome.cached for outcome in outcomes)
    assert [outcome.result for outcome in outcomes] == cold
    assert warm_cache.stats.hits == len(tasks)
    assert warm_cache.stats.misses == 0
