"""Content-addressed result cache: key stability, invalidation, codec
round-trips, warm-cache reuse with zero re-simulation, integrity
(key-field checking, fsck, quarantine), and the LRU size cap."""

import dataclasses
import os
import shutil

import pytest

import repro.sim.cache as cache_mod
from repro.config import inorder_machine, sst_machine
from repro.sim.cache import (
    ResultCache,
    cache_enabled_by_env,
    decode_value,
    encode_value,
    result_key,
)
from repro.sim.parallel import ParallelRunner, SimTask
from repro.sim.runner import simulate
from repro.workloads import hash_join
from tests.conftest import small_hierarchy_config


@pytest.fixture
def program():
    return hash_join(table_words=256, probes=48)


@pytest.fixture
def config():
    return sst_machine(small_hierarchy_config())


# ---------------------------------------------------------------------------
# Key derivation.
# ---------------------------------------------------------------------------


def test_key_is_stable_across_rebuilds(config, program):
    """Identical inputs rebuilt from scratch hash to the same key."""
    same_config = sst_machine(small_hierarchy_config())
    same_program = hash_join(table_words=256, probes=48)
    assert result_key(config, program, 1000) == \
        result_key(same_config, same_program, 1000)


def test_key_changes_with_any_input(config, program):
    base = result_key(config, program, 1000)
    other_config = dataclasses.replace(
        config, sst=dataclasses.replace(config.sst, dq_size=7))
    other_program = hash_join(table_words=256, probes=49)
    assert result_key(other_config, program, 1000) != base
    assert result_key(config, other_program, 1000) != base
    assert result_key(config, program, 1001) != base


def test_key_changes_with_schema_version(config, program, monkeypatch):
    base = result_key(config, program, 1000)
    monkeypatch.setattr(cache_mod, "SIM_SCHEMA_VERSION",
                        cache_mod.SIM_SCHEMA_VERSION + 1)
    assert result_key(config, program, 1000) != base


def test_canonicalize_distinguishes_types():
    assert cache_mod.canonicalize(1) != cache_mod.canonicalize("1")
    assert cache_mod.canonicalize(True) != cache_mod.canonicalize(1)
    assert cache_mod.canonicalize(1.0) != cache_mod.canonicalize(1)
    assert cache_mod.canonicalize(None) != cache_mod.canonicalize("none")


def test_program_fingerprint_ignores_labels_not_content(program):
    other = hash_join(table_words=256, probes=48)
    assert program.fingerprint() == other.fingerprint()
    different = hash_join(table_words=256, probes=48, seed=99)
    assert program.fingerprint() != different.fingerprint()


# ---------------------------------------------------------------------------
# Codec round-trip.
# ---------------------------------------------------------------------------


def test_result_roundtrips_through_codec(config, program):
    result = simulate(config, program, verify=True)
    restored = decode_value(encode_value(result))
    assert restored == result
    assert restored.extra["sst"] == result.extra["sst"]
    assert restored.ipc == result.ipc


def test_roundtrip_covers_all_core_kinds(program):
    for machine in (inorder_machine(small_hierarchy_config()),
                    sst_machine(small_hierarchy_config())):
        result = simulate(machine, program)
        assert decode_value(encode_value(result)) == result


# ---------------------------------------------------------------------------
# The on-disk cache.
# ---------------------------------------------------------------------------


def test_store_then_load(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    result = simulate(config, program)
    key = cache.key(config, program, 1_000_000)
    assert cache.load(key) is None
    cache.store(key, result)
    assert len(cache) == 1
    assert cache.load(key) == result
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_corrupt_entry_is_a_miss(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    key = cache.key(config, program, 1000)
    (tmp_path / f"{key}.json").write_text("{not json")
    assert cache.load(key) is None
    assert cache.stats.invalid == 1


def test_schema_bump_orphans_old_entries(tmp_path, config, program,
                                         monkeypatch):
    cache = ResultCache(tmp_path)
    result = simulate(config, program)
    old_key = cache.key(config, program, 1_000_000)
    cache.store(old_key, result)

    monkeypatch.setattr(cache_mod, "SIM_SCHEMA_VERSION",
                        cache_mod.SIM_SCHEMA_VERSION + 1)
    # The new schema addresses a different key entirely...
    assert cache.key(config, program, 1_000_000) != old_key
    # ...and even a forced load of the old file refuses the stale schema.
    assert cache.load(old_key) is None
    assert cache.stats.invalid == 1


def test_clear_removes_entries(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    cache.store(cache.key(config, program, 1000),
                simulate(config, program))
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cache_enabled_by_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert cache_enabled_by_env()
    for off in ("0", "off", "false", "no"):
        monkeypatch.setenv("REPRO_CACHE", off)
        assert not cache_enabled_by_env()
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert cache_enabled_by_env()


# ---------------------------------------------------------------------------
# Warm-cache runs do not simulate at all.
# ---------------------------------------------------------------------------


def test_warm_run_does_zero_resimulation(tmp_path, program, monkeypatch):
    configs = [inorder_machine(small_hierarchy_config()),
               sst_machine(small_hierarchy_config())]
    tasks = [SimTask(config=config, program=program) for config in configs]

    cache = ResultCache(tmp_path)
    cold = ParallelRunner(jobs=1, cache=cache).run(tasks)
    assert cache.stats.stores == len(tasks)

    # Any attempt to simulate on the warm pass is a test failure.
    def _boom(*args, **kwargs):
        raise AssertionError("warm cache run re-simulated a point")

    monkeypatch.setattr("repro.sim.parallel.simulate", _boom)
    warm_cache = ResultCache(tmp_path)
    runner = ParallelRunner(jobs=1, cache=warm_cache)
    outcomes = runner.run_outcomes(tasks)
    assert all(outcome.cached for outcome in outcomes)
    assert [outcome.result for outcome in outcomes] == cold
    assert warm_cache.stats.hits == len(tasks)
    assert warm_cache.stats.misses == 0


# ---------------------------------------------------------------------------
# Bugfix: a renamed/copied file must not serve the wrong result.
# ---------------------------------------------------------------------------


def test_key_mismatched_file_is_invalid_not_served(tmp_path, config,
                                                   program):
    cache = ResultCache(tmp_path)
    result = simulate(config, program)
    key = cache.key(config, program, 1000)
    other_key = cache.key(config, program, 2000)
    cache.store(key, result)
    # Simulate a rename/copy mistake: the file now addresses a point it
    # does not contain.
    shutil.copy(tmp_path / f"{key}.json", tmp_path / f"{other_key}.json")

    assert cache.load(other_key) is None  # never the wrong result
    assert cache.stats.invalid == 1
    assert cache.load(key) == result  # the honest entry still serves

    report = ResultCache(tmp_path).fsck()
    assert report.key_mismatch == 1
    assert report.ok == 1
    assert not (tmp_path / f"{other_key}.json").exists()
    assert (tmp_path / f"{key}.json").exists()


# ---------------------------------------------------------------------------
# Bugfix: a corrupt cached result is quarantined and re-simulated, not
# a permanent error.
# ---------------------------------------------------------------------------


def _store_doctored(cache, task):
    """Cache a result whose architectural state will fail golden
    verification (silent bit-rot in a cached file)."""
    result = simulate(task.config, task.program,
                      max_instructions=task.max_instructions)
    result.state.regs[1] ^= 0xDEAD
    key = cache.key(task.config, task.program, task.max_instructions)
    cache.store(key, result)
    return key


def test_verify_failure_quarantines_and_resimulates(tmp_path, config,
                                                    program):
    cache = ResultCache(tmp_path)
    task = SimTask(config=config, program=program, verify=True)
    key = _store_doctored(cache, task)

    outcomes = ParallelRunner(jobs=1, cache=cache).run_outcomes([task])
    assert outcomes[0].ok  # the point recovered by re-simulation
    assert not outcomes[0].cached
    assert cache.stats.invalid == 1
    # The quarantined entry was replaced by the sound re-simulation...
    assert ResultCache(tmp_path).load(key) == outcomes[0].result
    # ...so the next run is a clean cache hit.
    again = ParallelRunner(jobs=1, cache=ResultCache(tmp_path)) \
        .run_outcomes([task])
    assert again[0].cached and again[0].result == outcomes[0].result


def test_try_cache_load_reports_cache_corrupt_kind(tmp_path, config,
                                                   program):
    from repro.sim.resilience import KIND_CACHE_CORRUPT

    cache = ResultCache(tmp_path)
    task = SimTask(config=config, program=program, verify=True)
    key = _store_doctored(cache, task)

    runner = ParallelRunner(jobs=1, cache=cache)
    provisional = runner._try_cache_load(task)
    assert provisional is not None and not provisional.ok
    assert provisional.kind == KIND_CACHE_CORRUPT
    assert "quarantined" in provisional.error
    assert not (tmp_path / f"{key}.json").exists()  # deleted, not kept


# ---------------------------------------------------------------------------
# Bugfix: a store failure must not discard the finished batch.
# ---------------------------------------------------------------------------


def test_codec_store_failure_warns_and_continues(tmp_path, config,
                                                 program, monkeypatch):
    # Doctor the codec registry: CoreResult itself becomes unregistered,
    # as a newly added stats dataclass would be.
    monkeypatch.delitem(cache_mod._DATACLASSES, "CoreResult")
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    task = SimTask(config=config, program=program)
    with pytest.warns(RuntimeWarning, match="cache store failed"):
        outcomes = runner.run_outcomes([task])
    assert outcomes[0].ok  # the finished result survived
    assert outcomes[0].result.instructions > 0
    assert len(ResultCache(tmp_path)) == 0


def test_disk_store_failure_warns_and_continues(tmp_path, config,
                                                program):
    blocked = tmp_path / "not-a-dir"
    blocked.write_text("in the way")  # mkdir(parents=True) will raise
    runner = ParallelRunner(jobs=1, cache=ResultCache(blocked))
    task = SimTask(config=config, program=program)
    with pytest.warns(RuntimeWarning, match="cache store failed"):
        outcomes = runner.run_outcomes([task])
    assert outcomes[0].ok


# ---------------------------------------------------------------------------
# fsck.
# ---------------------------------------------------------------------------


def test_fsck_classifies_and_repairs_everything(tmp_path, config,
                                                program):
    cache = ResultCache(tmp_path)
    result = simulate(config, program)
    good_key = cache.key(config, program, 1000)
    cache.store(good_key, result)

    # Key mismatch: a copy addressing the wrong point.
    mismatch_key = cache.key(config, program, 2000)
    shutil.copy(tmp_path / f"{good_key}.json",
                tmp_path / f"{mismatch_key}.json")
    # Schema-stale: written under an older SIM_SCHEMA_VERSION.
    stale = dict(schema=cache_mod.SIM_SCHEMA_VERSION - 1, key="00ff",
                 result=None)
    import json as json_mod
    (tmp_path / "00ff.json").write_text(json_mod.dumps(stale))
    # Corrupt: unparseable JSON.
    (tmp_path / "beef.json").write_text("{definitely not json")
    # Orphan tmp file from an interrupted store.
    (tmp_path / ".tmp-abc123.json").write_text("partial write")

    dry = ResultCache(tmp_path).fsck(repair=False)
    assert (dry.scanned, dry.ok) == (4, 1)
    assert dry.key_mismatch == 1 and dry.schema_stale == 1
    assert dry.corrupt == 1 and dry.orphan_tmp == 1
    assert dry.problems == 4 and not dry.removed
    assert (tmp_path / "beef.json").exists()  # dry run removed nothing

    report = ResultCache(tmp_path).fsck()
    assert report.problems == 4
    assert sorted(report.removed) == sorted([
        f"{mismatch_key}.json", "00ff.json", "beef.json",
        ".tmp-abc123.json",
    ])
    survivors = ResultCache(tmp_path)
    assert len(survivors) == 1
    assert survivors.load(good_key) == result
    assert survivors.fsck().problems == 0


def test_fsck_on_missing_dir_is_empty(tmp_path):
    report = ResultCache(tmp_path / "never-created").fsck()
    assert report.scanned == 0 and report.problems == 0


def test_len_and_clear_ignore_tmp_orphans(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    cache.store(cache.key(config, program, 1000),
                simulate(config, program))
    (tmp_path / ".tmp-orphan.json").write_text("x")
    assert len(cache) == 1  # the orphan is not an entry
    assert cache.disk_stats()["orphan_tmp"] == 1
    assert cache.clear() == 1  # one *entry* removed...
    assert not (tmp_path / ".tmp-orphan.json").exists()  # ...orphan too


def test_invalidate_counts_and_deletes(tmp_path, config, program):
    cache = ResultCache(tmp_path)
    key = cache.key(config, program, 1000)
    assert not cache.invalidate(key)  # nothing there yet
    cache.store(key, simulate(config, program))
    assert cache.invalidate(key)
    assert cache.stats.invalid == 1
    assert cache.load(key) is None


# ---------------------------------------------------------------------------
# LRU size cap.
# ---------------------------------------------------------------------------


def test_lru_eviction_respects_cap_and_recency(tmp_path, config,
                                               program):
    unbounded = ResultCache(tmp_path)
    result = simulate(config, program)
    keys = [unbounded.key(config, program, budget)
            for budget in (1000, 2000, 3000)]
    for index, key in enumerate(keys):
        unbounded.store(key, result)
        # Distinct, strictly increasing mtimes regardless of fs
        # timestamp granularity.
        os.utime(tmp_path / f"{key}.json", (index, index))

    entry_bytes = (tmp_path / f"{keys[0]}.json").stat().st_size
    capped = ResultCache(tmp_path, max_bytes=3 * entry_bytes + 10)
    # A hit refreshes recency, making keys[0] the most recently used.
    assert capped.load(keys[0]) == result
    newest = unbounded.key(config, program, 4000)
    capped.store(newest, result)
    os.utime(tmp_path / f"{newest}.json", None)

    # The cap holds and the least-recently-used entry (keys[1]) went.
    assert capped.stats.evictions == 1
    remaining = {path.stem for path in tmp_path.glob("*.json")}
    assert keys[1] not in remaining
    assert {keys[0], keys[2], newest} <= remaining


def test_cache_max_bytes_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
    assert ResultCache(tmp_path).max_bytes == 12345
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
    with pytest.raises(Exception, match="REPRO_CACHE_MAX_BYTES"):
        ResultCache(tmp_path)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
    assert ResultCache(tmp_path).max_bytes is None
    assert ResultCache(tmp_path, max_bytes=7).max_bytes == 7


def test_lru_eviction_equal_mtimes_is_deterministic(tmp_path, config,
                                                    program):
    """Entries stored in one burst tie on coarse filesystem mtimes;
    the name tie-break makes the eviction order reproducible."""
    unbounded = ResultCache(tmp_path)
    result = simulate(config, program)
    keys = [unbounded.key(config, program, budget)
            for budget in (1000, 2000, 3000, 4000)]
    for key in keys:
        unbounded.store(key, result)
        os.utime(tmp_path / f"{key}.json", (100, 100))  # all tie

    entry_bytes = (tmp_path / f"{keys[0]}.json").stat().st_size
    capped = ResultCache(tmp_path, max_bytes=2 * entry_bytes + 10)
    trigger = unbounded.key(config, program, 5000)
    capped.store(trigger, result)
    os.utime(tmp_path / f"{trigger}.json", (200, 200))
    capped._evict_to_cap()

    # With every mtime equal, the lexicographically smallest names go
    # first — never the newer trigger entry, never a random subset.
    survivors = {path.stem for path in tmp_path.glob("*.json")}
    expected_evicted = set(sorted(keys)[:len(keys) + 1 - 2])
    assert survivors == ({trigger} | set(keys)) - expected_evicted


def test_load_refreshes_mtime_for_lru(tmp_path, config, program):
    """A hit must bump the entry's recency or the size cap evicts the
    hottest entries first."""
    cache = ResultCache(tmp_path, max_bytes=1 << 30)
    result = simulate(config, program)
    key = cache.key(config, program, 1000)
    cache.store(key, result)
    path = tmp_path / f"{key}.json"
    os.utime(path, (1, 1))
    assert cache.load(key) == result
    assert path.stat().st_mtime > 1
