"""The ``repro cache stats|fsck|clear`` maintenance subcommands."""

import json

import pytest

from repro.cli import main
from repro.config import sst_machine
from repro.sim.cache import SIM_SCHEMA_VERSION, ResultCache
from repro.sim.runner import simulate
from repro.workloads import hash_join
from tests.conftest import small_hierarchy_config


@pytest.fixture
def warm_dir(tmp_path):
    cache = ResultCache(tmp_path)
    config = sst_machine(small_hierarchy_config())
    program = hash_join(table_words=256, probes=32)
    cache.store(cache.key(config, program, 1000),
                simulate(config, program))
    return tmp_path


def test_cache_stats_human_and_json(warm_dir, capsys):
    assert main(["cache", "stats", "--cache-dir", str(warm_dir)]) == 0
    text = capsys.readouterr().out
    assert "entries:     1" in text

    assert main(["cache", "stats", "--cache-dir", str(warm_dir),
                 "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["entries"] == 1
    assert info["schema"] == SIM_SCHEMA_VERSION
    assert info["total_bytes"] > 0


def test_cache_fsck_repairs_corruption(warm_dir, capsys):
    (warm_dir / "dead.json").write_text("{broken")
    (warm_dir / ".tmp-leftover.json").write_text("partial")

    # Dry run: problems found, nothing removed, non-zero exit.
    assert main(["cache", "fsck", "--cache-dir", str(warm_dir),
                 "--dry-run"]) == 1
    assert "1 corrupt" in capsys.readouterr().out
    assert (warm_dir / "dead.json").exists()

    # Repairing run removes both offenders and exits 0.
    assert main(["cache", "fsck", "--cache-dir", str(warm_dir)]) == 0
    out = capsys.readouterr().out
    assert "removed dead.json" in out
    assert "removed .tmp-leftover.json" in out
    assert not (warm_dir / "dead.json").exists()
    assert not (warm_dir / ".tmp-leftover.json").exists()
    assert len(ResultCache(warm_dir)) == 1  # the sound entry survives

    # A clean cache fscks clean.
    assert main(["cache", "fsck", "--cache-dir", str(warm_dir),
                 "--dry-run"]) == 0


def test_cache_clear(warm_dir, capsys):
    assert main(["cache", "clear", "--cache-dir", str(warm_dir)]) == 0
    assert "removed 1 cached result(s)" in capsys.readouterr().out
    assert len(ResultCache(warm_dir)) == 0
