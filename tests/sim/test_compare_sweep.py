"""compare_machines, speedup_table, sweep."""

import pytest

from repro.config import (
    DRAMConfig,
    ea_machine,
    inorder_machine,
    sst_machine,
)
from repro.sim.compare import compare_machines, speedup_table
from repro.sim.sweep import sweep, sweep_many
from repro.workloads import hash_join
from tests.conftest import small_hierarchy_config

import dataclasses


@pytest.fixture(scope="module")
def program():
    return hash_join(table_words=256, probes=48)


def test_compare_machines_runs_all(program):
    results = compare_machines(
        program,
        [inorder_machine(small_hierarchy_config()),
         sst_machine(small_hierarchy_config())],
        verify=True,
    )
    assert set(results) == {"inorder-2w", "sst-2w-2ckpt"}
    assert results["sst-2w-2ckpt"].cycles < results["inorder-2w"].cycles


def test_speedup_table_renders(program):
    table = speedup_table(
        "E-test",
        [program],
        [inorder_machine(small_hierarchy_config()),
         ea_machine(small_hierarchy_config())],
        baseline_name="inorder-2w",
    )
    text = table.render()
    assert "db-hashjoin" in text
    assert "geomean" in text
    assert "x" in text


def test_speedup_table_rejects_unknown_baseline(program):
    with pytest.raises(ValueError, match="baseline"):
        speedup_table("T", [program],
                      [inorder_machine(small_hierarchy_config())],
                      baseline_name="nope")


def test_sweep_axis(program):
    def make_config(latency):
        hierarchy = dataclasses.replace(
            small_hierarchy_config(), dram=DRAMConfig(latency=latency,
                                                      min_interval=2)
        )
        return inorder_machine(hierarchy)

    results = sweep(program, [50, 400], make_config)
    assert [value for value, _ in results] == [50, 400]
    assert results[0][1].cycles < results[1][1].cycles


def test_sweep_many(program):
    other = hash_join(table_words=256, probes=24, name="db-small")
    out = sweep_many([program, other], [100],
                     lambda latency: inorder_machine(small_hierarchy_config()))
    assert set(out) == {"db-hashjoin", "db-small"}
