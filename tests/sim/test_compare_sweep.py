"""compare_machines, speedup_table, sweep."""

import pytest

from repro.config import (
    DRAMConfig,
    ea_machine,
    inorder_machine,
    sst_machine,
)
from repro.sim.compare import compare_machines, speedup_table
from repro.sim.sweep import sweep, sweep_many
from repro.workloads import hash_join
from tests.conftest import small_hierarchy_config

import dataclasses


@pytest.fixture(scope="module")
def program():
    return hash_join(table_words=256, probes=48)


def test_compare_machines_runs_all(program):
    results = compare_machines(
        program,
        [inorder_machine(small_hierarchy_config()),
         sst_machine(small_hierarchy_config())],
        verify=True,
    )
    assert set(results) == {"inorder-2w", "sst-2w-2ckpt"}
    assert results["sst-2w-2ckpt"].cycles < results["inorder-2w"].cycles


def test_speedup_table_renders(program):
    table = speedup_table(
        "E-test",
        [program],
        [inorder_machine(small_hierarchy_config()),
         ea_machine(small_hierarchy_config())],
        baseline_name="inorder-2w",
    )
    text = table.render()
    assert "db-hashjoin" in text
    assert "geomean" in text
    assert "x" in text


def test_speedup_table_rejects_unknown_baseline(program):
    with pytest.raises(ValueError, match="baseline"):
        speedup_table("T", [program],
                      [inorder_machine(small_hierarchy_config())],
                      baseline_name="nope")


def test_sweep_axis(program):
    def make_config(latency):
        hierarchy = dataclasses.replace(
            small_hierarchy_config(), dram=DRAMConfig(latency=latency,
                                                      min_interval=2)
        )
        return inorder_machine(hierarchy)

    results = sweep(program, [50, 400], make_config)
    assert [value for value, _ in results] == [50, 400]
    assert results[0][1].cycles < results[1][1].cycles


def test_sweep_many(program):
    other = hash_join(table_words=256, probes=24, name="db-small")
    out = sweep_many([program, other], [100],
                     lambda latency: inorder_machine(small_hierarchy_config()))
    assert set(out) == {"db-hashjoin", "db-small"}


def _corrupt_cached_regs(cache_dir):
    """Tamper with the single cached entry's register file so golden
    verification fails on load."""
    import json

    entry = next(cache_dir.glob("*.json"))
    payload = json.loads(entry.read_text())
    payload["result"]["fields"]["state"]["fields"]["regs"][2] ^= 1
    entry.write_text(json.dumps(payload))
    return entry


@pytest.mark.parametrize("on_error", ["skip", "raise"])
def test_sweep_cached_corrupt_point_is_resimulated_not_raised(
        program, tmp_path, on_error):
    """A cached-but-corrupt point must never fail the sweep by itself:
    it is quarantined and transparently re-simulated under either
    ``on_error`` mode, and the fresh result heals the cache."""
    from repro.sim.cache import ResultCache

    def make_config(latency):
        return inorder_machine(small_hierarchy_config())

    warm = sweep(program, [100], make_config,
                 cache=ResultCache(tmp_path), verify=True)
    _corrupt_cached_regs(tmp_path)

    cache = ResultCache(tmp_path)
    results = sweep(program, [100], make_config, cache=cache,
                    verify=True, on_error=on_error)
    assert [value for value, _ in results] == [100]
    assert results[0][1].cycles == warm[0][1].cycles
    assert results[0][1].state.regs == warm[0][1].state.regs
    assert cache.stats.invalid == 1  # the quarantine

    # The re-simulated result replaced the corrupt entry: a third sweep
    # is a pure cache hit with intact state.
    healed_cache = ResultCache(tmp_path)
    healed = sweep(program, [100], make_config, cache=healed_cache,
                   verify=True, on_error=on_error)
    assert healed_cache.stats.hits == 1
    assert healed_cache.stats.invalid == 0
    assert healed[0][1].state.regs == warm[0][1].state.regs


def test_ensemble_sweep_varies_the_program_axis(tmp_path):
    from repro.sim.cache import ResultCache
    from repro.sim.sweep import ensemble_sweep

    def make_program(seed):
        return hash_join(table_words=256, probes=24, seed=seed,
                         name=f"db-seeded-{seed}")

    cache = ResultCache(tmp_path)
    results = ensemble_sweep(make_program, [1, 2, 3], cache=cache)
    assert [value for value, _ in results] == [1, 2, 3]
    assert all(result.core_name == "ensemble" for _, result in results)

    # Warm lanes restore from the cache without executing.
    warm = ensemble_sweep(make_program, [1, 2, 3], cache=cache)
    assert cache.stats.hits >= 3
    for (_, a), (_, b) in zip(results, warm):
        assert a.state.regs == b.state.regs
