"""The batched timing engine's bit-identity contract: every lane of a
lockstep in-order batch equals a scalar ``Machine.run`` of the same
program — cycles, instructions, architectural state (exact sparse
memory words, zeros included), and the full ``extra`` payload — across
the workload suite, hierarchy variations, error lanes, and divergent
control flow."""

from __future__ import annotations

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreKind,
    HierarchyConfig,
    InOrderConfig,
    LatencyConfig,
    MachineConfig,
    PredictorKind,
    PrefetcherConfig,
    PrefetcherKind,
    TLBConfig,
    inorder_machine,
    ooo_machine,
    sst_machine,
)
from repro.isa.assembler import assemble
from repro.regress.firewall import point_behavior, state_hash
from repro.sim.ensemble import EnsembleError, numpy_available
from repro.sim.machine import Machine
from repro.sim.timing_ensemble import (
    run_timing_ensemble,
    timing_ensemble_eligible,
)
from repro.workloads.suite import WORKLOAD_FACTORIES, suite_params

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

LANES = 8


def lane_programs(name, lanes=LANES, scale="tiny"):
    kwargs = suite_params(scale)[name]
    return [
        WORKLOAD_FACTORIES[name](**kwargs, seed=300 + lane,
                                 name=f"{name}@lane{lane}")
        for lane in range(lanes)
    ]


def _stress_hierarchy(**overrides):
    """Tiny caches + shallow MSHRs: every eviction/merge/full-stall
    path fires even on tiny-scale workloads."""
    params = dict(
        l1d=CacheConfig(size_bytes=1024, assoc=2, hit_latency=2,
                        mshr_entries=2),
        l1i=CacheConfig(size_bytes=1024, assoc=2, hit_latency=1,
                        mshr_entries=2),
        l2=CacheConfig(size_bytes=8 * 1024, assoc=4, hit_latency=12,
                       mshr_entries=4),
    )
    params.update(overrides)
    return HierarchyConfig(**params)


CONFIGS = {
    "default": inorder_machine(),
    "width1": inorder_machine(width=1),
    "stress": inorder_machine(hierarchy=_stress_hierarchy()),
    "tlb": inorder_machine(hierarchy=_stress_hierarchy(
        tlb=TLBConfig(entries=2, page_bytes=8192, walk_latency=37))),
    "ifetch": inorder_machine(hierarchy=_stress_hierarchy(
        model_ifetch=True)),
    "prefetch": inorder_machine(hierarchy=_stress_hierarchy(
        l2_prefetcher=PrefetcherConfig(kind=PrefetcherKind.STRIDE,
                                       degree=2))),
    "bimodal": MachineConfig(
        core_kind=CoreKind.INORDER,
        hierarchy=_stress_hierarchy(
            tlb=TLBConfig(entries=4, page_bytes=8192, walk_latency=50),
            model_ifetch=True,
            l2_prefetcher=PrefetcherConfig(kind=PrefetcherKind.NEXT_LINE),
        ),
        inorder=InOrderConfig(
            width=2,
            latencies=LatencyConfig(alu=1, mul=4, div=17),
            predictor=BranchPredictorConfig(kind=PredictorKind.BIMODAL,
                                            table_bits=6, history_bits=0,
                                            btb_entries=16, ras_entries=2,
                                            mispredict_penalty=5),
        ),
        name="inorder-bimodal",
    ),
}


def assert_lanes_match(config, programs, outcomes, max_instructions=None):
    machine = Machine(config)
    assert len(outcomes) == len(programs)
    for program, outcome in zip(programs, outcomes):
        if max_instructions is None:
            expect_call = lambda: machine.run(program)  # noqa: E731
        else:
            expect_call = lambda: machine.run(  # noqa: E731
                program, max_instructions=max_instructions)
        try:
            expected = expect_call()
        except Exception as exc:  # noqa: BLE001 - error text is the oracle
            assert outcome.result is None, (
                f"{program.name}: batched succeeded where scalar raised "
                f"{exc!r}"
            )
            assert outcome.error == f"{type(exc).__name__}: {exc}"
            continue
        assert outcome.error is None, (
            f"{program.name}: batched failed ({outcome.error}) where "
            "scalar succeeded"
        )
        got = outcome.result
        assert got == expected, program.name
        # Dataclass equality ignores zero-valued memory words and numpy
        # scalar types; the firewall's governed behavior surface does
        # not — require its hashes bit-for-bit too.
        assert state_hash(got.state) == state_hash(expected.state), \
            program.name
        assert point_behavior(got) == point_behavior(expected), program.name


# ---------------------------------------------------------------------------
# Differential bit-identity across the workload suite.
# ---------------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("workload", sorted(WORKLOAD_FACTORIES))
def test_every_lane_matches_scalar_default_config(workload):
    programs = lane_programs(workload)
    outcomes = run_timing_ensemble(CONFIGS["default"], programs)
    assert_lanes_match(CONFIGS["default"], programs, outcomes)


@needs_numpy
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_every_lane_matches_scalar_across_configs(config_name):
    config = CONFIGS[config_name]
    programs = lane_programs("oltp-chase", lanes=6)
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)


@needs_numpy
@pytest.mark.parametrize("config_name", ["stress", "bimodal"])
def test_branchy_divergence_across_configs(config_name):
    config = CONFIGS[config_name]
    programs = lane_programs("int-branchy", lanes=6)
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)


@needs_numpy
def test_wide_batch_matches_scalar():
    config = CONFIGS["default"]
    programs = lane_programs("db-hashjoin", lanes=64)
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)


# ---------------------------------------------------------------------------
# Targeted control-flow / error-lane programs (lane-varying immediates).
# ---------------------------------------------------------------------------


def _asm_lanes(template, values, name):
    return [
        assemble(template.format(value=value), name=f"{name}@lane{lane}")
        for lane, value in enumerate(values)
    ]


MISALIGN_ASM = """
    movi r1, {value}
    ld   r2, 0(r1)
    addi r3, r2, 1
    halt
"""


@needs_numpy
def test_misaligned_lanes_fault_and_survivors_match():
    # Lanes 1 and 3 compute misaligned addresses; the rest are fine.
    values = [0x1000, 0x1004, 0x2000, 0x3001, 0x4008]
    programs = _asm_lanes(MISALIGN_ASM, values, "misalign")
    config = CONFIGS["default"]
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)
    assert outcomes[1].error is not None
    assert "misaligned" in outcomes[1].error
    assert outcomes[3].error is not None
    assert outcomes[0].ok and outcomes[2].ok and outcomes[4].ok


STORE_ZERO_ASM = """
    movi r1, {value}
    movi r2, 7
    st   r2, 0(r1)
    st   zero, 0(r1)     ; overwrite with an explicit zero word
    st   zero, 8(r1)     ; store zero to a never-written word
    halt
"""


@needs_numpy
def test_zero_stores_keep_exact_memory_words():
    """Zero-valued stores must survive into the result's memory image:
    the firewall hash and cache codec serialize them."""
    programs = _asm_lanes(STORE_ZERO_ASM, [0x1000, 0x2000, 0x3000], "zeros")
    config = CONFIGS["default"]
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)
    words = dict(outcomes[0].result.state.memory.items())
    assert words[0x1000] == 0
    assert words[0x1008] == 0


BUDGET_ASM = """
loop:
    addi r1, r1, {value}
    jal  zero, loop
    halt                 ; unreachable, satisfies validate()
"""


@needs_numpy
def test_budget_exhaustion_matches_scalar_error():
    programs = _asm_lanes(BUDGET_ASM, [1, 2, 3], "spin")
    config = CONFIGS["default"]
    outcomes = run_timing_ensemble(config, programs, max_instructions=50)
    assert_lanes_match(config, programs, outcomes, max_instructions=50)
    for outcome in outcomes:
        assert outcome.error is not None
        assert "exceeded 50 instructions" in outcome.error


JALR_ASM = """
    movi r1, {value}
    jalr zero, r1, 0
    halt
    halt
"""


@needs_numpy
def test_indirect_jump_out_of_range_matches_scalar():
    # Lane 0 jumps to a valid PC; lane 1 jumps far outside; lane 2
    # wraps negative (huge unsigned PC).
    programs = _asm_lanes(JALR_ASM, [2, 99, -5], "wildjump")
    config = CONFIGS["default"]
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)
    assert outcomes[0].ok
    assert outcomes[1].error is not None and "outside program" in outcomes[1].error
    assert outcomes[2].error is not None


CALL_ASM = """
    movi r5, {value}
    jal  ra, helper
    jal  ra, helper
    jal  ra, helper
    halt
helper:
    addi r5, r5, 3
    jalr zero, ra, 0
"""


@needs_numpy
def test_call_return_ras_matches_scalar():
    programs = _asm_lanes(CALL_ASM, [10, 20, 30, 40], "callret")
    config = CONFIGS["bimodal"]
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)
    for outcome in outcomes:
        ras_hits = outcome.result.extra["branch"].ras_hits
        assert ras_hits >= 1


DIVERGE_ASM = """
    movi r1, {value}
    movi r3, 0
    movi r4, 16
loop:
    andi r2, r1, 1
    beq  r2, zero, even
    addi r3, r3, 7
    jal  zero, next
even:
    membar
    addi r3, r3, 1
next:
    srli r1, r1, 1
    addi r4, r4, -1
    bne  r4, zero, loop
    div  r6, r3, r2      ; r2 is 0 or 1 per lane at exit
    rem  r7, r3, r4
    halt
"""


@needs_numpy
def test_divergent_reconvergent_lockstep_with_barriers_and_div():
    values = [0b1010101, 0b1111, 0, 0xFFFF, 0x1234, 7, 8, 1 << 15]
    programs = _asm_lanes(DIVERGE_ASM, values, "diverge")
    config = CONFIGS["stress"]
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)


# ---------------------------------------------------------------------------
# Eligibility and guard rails.
# ---------------------------------------------------------------------------


@needs_numpy
def test_eligibility_respects_config_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_TIMING_ENSEMBLE", raising=False)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    assert timing_ensemble_eligible(CONFIGS["default"])
    assert timing_ensemble_eligible(CONFIGS["bimodal"])
    assert not timing_ensemble_eligible(sst_machine())
    assert not timing_ensemble_eligible(ooo_machine())
    static = MachineConfig(
        core_kind=CoreKind.INORDER,
        inorder=InOrderConfig(predictor=BranchPredictorConfig(
            kind=PredictorKind.ALWAYS_TAKEN)),
    )
    assert not timing_ensemble_eligible(static)

    monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", "0")
    assert not timing_ensemble_eligible(CONFIGS["default"])
    monkeypatch.delenv("REPRO_TIMING_ENSEMBLE", raising=False)

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert not timing_ensemble_eligible(CONFIGS["default"])
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)

    monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:0.5")
    assert not timing_ensemble_eligible(CONFIGS["default"])


@needs_numpy
def test_non_inorder_config_rejected():
    programs = lane_programs("fp-stream", lanes=2)
    with pytest.raises(EnsembleError, match="in-order"):
        run_timing_ensemble(sst_machine(), programs)


@needs_numpy
def test_static_predictor_rejected():
    programs = lane_programs("fp-stream", lanes=2)
    config = MachineConfig(
        core_kind=CoreKind.INORDER,
        inorder=InOrderConfig(predictor=BranchPredictorConfig(
            kind=PredictorKind.ALWAYS_NOT_TAKEN)),
    )
    with pytest.raises(EnsembleError, match="predictor"):
        run_timing_ensemble(config, programs)


@needs_numpy
def test_single_lane_batch_matches_scalar():
    programs = lane_programs("web-storelog", lanes=1)
    config = CONFIGS["default"]
    outcomes = run_timing_ensemble(config, programs)
    assert_lanes_match(config, programs, outcomes)
