"""Failure taxonomy + retry/backoff: structural classification (never
exception-name strings), fresh-pool re-dispatch of unfinished tasks,
retry exhaustion, and the REPRO_TASK_RETRIES knob."""

import dataclasses

import pytest

import repro.sim.parallel as parallel_mod
from repro.config import inorder_machine, sst_machine
from repro.errors import ConfigError
from repro.sim.parallel import ParallelRunner, SimTask, SimTaskError
from repro.sim.resilience import (
    DEFAULT_TASK_RETRIES,
    KIND_POOL_TIMEOUT,
    KIND_TASK_ERROR,
    KIND_WORKER_CRASH,
    TRANSIENT_KINDS,
    RetryPolicy,
    resolve_retries,
)
from repro.workloads import hash_join, pointer_chase
from tests.conftest import small_hierarchy_config

FAST_RETRY = RetryPolicy(retries=3, backoff_base=0.0)
NO_RETRY = RetryPolicy(retries=0)


@pytest.fixture(autouse=True)
def _pinned_fault_env(monkeypatch):
    """These tests assert attempt counts and failure kinds, so an
    ambient fault spec (e.g. the CI fault-injection matrix) must not
    add faults beyond what each test injects itself."""
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)


@pytest.fixture(scope="module")
def programs():
    return [hash_join(table_words=256, probes=32),
            pointer_chase(chains=2, nodes_per_chain=64, hops=40)]


def _tasks(programs):
    return [SimTask(config=config, program=program)
            for program in programs
            for config in (inorder_machine(small_hierarchy_config()),
                           sst_machine(small_hierarchy_config()))]


# ---------------------------------------------------------------------------
# Bugfix regression: a workload raising TimeoutError is a task-error,
# not a pool timeout, and must not abort the remaining batch.
# ---------------------------------------------------------------------------


def test_workload_timeout_error_is_task_error_not_pool_timeout(
        programs, monkeypatch):
    """The old code matched error.startswith("TimeoutError") and tore
    down the pool, killing every in-flight point."""
    real_simulate = parallel_mod.simulate
    poison = programs[1].name

    def simulate_with_timeout(config, program, **kwargs):
        if program.name == poison:
            raise TimeoutError("from workload")
        return real_simulate(config, program, **kwargs)

    monkeypatch.setattr(parallel_mod, "simulate", simulate_with_timeout)
    tasks = _tasks(programs)  # fork inherits the patched module
    outcomes = ParallelRunner(jobs=2, retry_policy=FAST_RETRY) \
        .run_outcomes(tasks)

    poisoned = [o for o in outcomes if o.task.program.name == poison]
    healthy = [o for o in outcomes if o.task.program.name != poison]
    assert poisoned and healthy
    for outcome in poisoned:
        assert not outcome.ok
        assert outcome.kind == KIND_TASK_ERROR
        assert "TimeoutError: from workload" in outcome.error
        # Deterministic failures are not retried.
        assert outcome.attempts == 1
    # The batch was not aborted: every healthy point finished.
    for outcome in healthy:
        assert outcome.ok, outcome.error
    assert all(o.kind != KIND_POOL_TIMEOUT for o in outcomes)


# ---------------------------------------------------------------------------
# Transient-kind retries.
# ---------------------------------------------------------------------------


def test_injected_crash_recovers_with_retry(programs, monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    baseline = ParallelRunner(jobs=1, retry_policy=NO_RETRY) \
        .run_outcomes(_tasks(programs))

    monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1")  # attempt 1 only
    runner = ParallelRunner(jobs=1, retry_policy=FAST_RETRY)
    outcomes = runner.run_outcomes(_tasks(programs))
    for base, outcome in zip(baseline, outcomes):
        assert outcome.ok
        assert outcome.attempts == 2  # crashed once, recovered
        assert outcome.result == base.result  # bit-identical recovery


def test_retry_exhaustion_reports_kind_and_attempts(programs, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1@all")
    runner = ParallelRunner(jobs=1,
                            retry_policy=RetryPolicy(retries=2,
                                                     backoff_base=0.0))
    task = SimTask(config=sst_machine(small_hierarchy_config()),
                   program=programs[0])
    outcomes = runner.run_outcomes([task])
    assert not outcomes[0].ok
    assert outcomes[0].kind == KIND_WORKER_CRASH
    assert outcomes[0].attempts == 3  # 1 try + 2 retries, all sabotaged

    with pytest.raises(SimTaskError, match="worker-crash after 3"):
        runner.run([task])


def test_no_retry_budget_fails_on_first_crash(programs, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1")
    runner = ParallelRunner(jobs=1, retry_policy=NO_RETRY)
    outcomes = runner.run_outcomes(
        [SimTask(config=sst_machine(small_hierarchy_config()),
                 program=programs[0])])
    assert not outcomes[0].ok
    assert outcomes[0].kind == KIND_WORKER_CRASH
    assert outcomes[0].attempts == 1


def test_deterministic_task_error_never_retried(programs):
    bad = SimTask(config=sst_machine(small_hierarchy_config()),
                  program=programs[0], max_instructions=10)
    outcomes = ParallelRunner(jobs=1, retry_policy=FAST_RETRY) \
        .run_outcomes([bad])
    assert outcomes[0].kind == KIND_TASK_ERROR
    assert outcomes[0].attempts == 1


# ---------------------------------------------------------------------------
# Pool timeouts: only unfinished tasks are re-dispatched.
# ---------------------------------------------------------------------------


def test_hang_redispatches_only_unfinished_tasks(programs, monkeypatch):
    """A hung point times out and retries on a fresh pool; the points
    that finished are kept (attempts == 1) and results stay
    bit-identical to a clean run."""
    clean = ParallelRunner(jobs=2, retry_policy=NO_RETRY) \
        .run_outcomes(_tasks(programs))

    monkeypatch.setenv("REPRO_FAULT_INJECT",
                       f"hang:{programs[1].name}")
    runner = ParallelRunner(jobs=2, timeout=1.0, retry_policy=FAST_RETRY)
    outcomes = runner.run_outcomes(_tasks(programs))
    for base, outcome in zip(clean, outcomes):
        assert outcome.ok, outcome.error
        assert outcome.result == base.result
        if outcome.task.program.name == programs[1].name:
            assert outcome.attempts == 2  # hung once, then recovered
        else:
            assert outcome.attempts == 1  # finished points never re-run


def test_inline_hang_classified_as_pool_timeout(programs, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT",
                       f"hang:{programs[0].name}@all")
    runner = ParallelRunner(jobs=1, retry_policy=NO_RETRY)
    outcomes = runner.run_outcomes(
        [SimTask(config=inorder_machine(small_hierarchy_config()),
                 program=programs[0])])
    assert not outcomes[0].ok
    assert outcomes[0].kind == KIND_POOL_TIMEOUT
    assert "injected hang" in outcomes[0].error


# ---------------------------------------------------------------------------
# Policy mechanics and the REPRO_TASK_RETRIES knob.
# ---------------------------------------------------------------------------


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(retries=5, backoff_base=0.25,
                         backoff_factor=2.0, backoff_max=1.0)
    assert policy.delay(1) == 0.25
    assert policy.delay(2) == 0.5
    assert policy.delay(3) == 1.0
    assert policy.delay(4) == 1.0  # capped


def test_pause_sleeps_through_injected_sleeper():
    slept = []
    policy = RetryPolicy(retries=1, backoff_base=0.5,
                         sleeper=slept.append)
    policy.pause(1)
    policy.pause(2)
    assert slept == [0.5, 1.0]


def test_should_retry_only_transient_kinds():
    policy = RetryPolicy(retries=2)
    for kind in TRANSIENT_KINDS:
        assert policy.should_retry(kind, 1)
        assert policy.should_retry(kind, 2)
        assert not policy.should_retry(kind, 3)  # budget exhausted
    assert not policy.should_retry(KIND_TASK_ERROR, 1)
    assert not policy.should_retry(None, 1)


def test_resolve_retries_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    assert resolve_retries() == DEFAULT_TASK_RETRIES
    assert resolve_retries(5) == 5
    monkeypatch.setenv("REPRO_TASK_RETRIES", "7")
    assert resolve_retries() == 7
    assert resolve_retries(1) == 1  # explicit argument wins over env
    monkeypatch.setenv("REPRO_TASK_RETRIES", "many")
    with pytest.raises(ConfigError, match="REPRO_TASK_RETRIES"):
        resolve_retries()
    with pytest.raises(ConfigError, match=">= 0"):
        resolve_retries(-1)


def test_runner_reads_retry_env(monkeypatch):
    monkeypatch.setenv("REPRO_TASK_RETRIES", "9")
    assert ParallelRunner(jobs=1).retry_policy.retries == 9
    assert ParallelRunner(jobs=1, retries=4).retry_policy.retries == 4


def test_outcome_dataclass_defaults(programs):
    task = SimTask(config=inorder_machine(small_hierarchy_config()),
                   program=programs[0])
    outcome = dataclasses.replace(
        parallel_mod.TaskOutcome(task=task), error="boom",
        kind=KIND_WORKER_CRASH)
    assert not outcome.ok
    assert outcome.attempts == 1
