"""Machine assembly, fresh-hierarchy isolation, golden verification."""

import pytest

from repro.baselines.inorder import InOrderCore
from repro.baselines.ooo import OoOCore
from repro.config import (
    ea_machine,
    inorder_machine,
    ooo_machine,
    sst_machine,
)
from repro.core import SSTCore
from repro.errors import SimulatorInvariantError
from repro.isa.assembler import assemble
from repro.sim.machine import Machine, build_core, build_hierarchy
from repro.sim.runner import simulate, verify_against_golden
from tests.conftest import small_hierarchy_config


def test_build_core_dispatch(countdown_program):
    hierarchy = build_hierarchy(small_hierarchy_config())
    assert isinstance(
        build_core(inorder_machine(), countdown_program, hierarchy),
        InOrderCore,
    )
    assert isinstance(
        build_core(ooo_machine(), countdown_program, hierarchy), OoOCore
    )
    assert isinstance(
        build_core(sst_machine(), countdown_program, hierarchy), SSTCore
    )


def test_machine_result_labelled(countdown_program):
    result = Machine(sst_machine()).run(countdown_program)
    assert result.core_name == "sst-2w-2ckpt"


def test_runs_do_not_share_cache_state(miss_chain_program):
    machine = Machine(inorder_machine(small_hierarchy_config()))
    first = machine.run(miss_chain_program)
    second = machine.run(miss_chain_program)
    assert first.cycles == second.cycles  # second run starts cold again


def test_simulate_verifies(countdown_program):
    result = simulate(ea_machine(small_hierarchy_config()),
                      countdown_program, verify=True)
    assert result.instructions > 0


def test_verify_catches_register_divergence(countdown_program):
    result = simulate(inorder_machine(), countdown_program)
    result.state.regs[2] += 1  # corrupt
    with pytest.raises(SimulatorInvariantError, match="register state"):
        verify_against_golden(result, countdown_program)


def test_verify_catches_memory_divergence():
    program = assemble("""
        movi r1, 0x100
        movi r2, 5
        st   r2, 0(r1)
        halt
    """)
    result = simulate(inorder_machine(), program)
    result.state.memory.write(0x100, 6)
    with pytest.raises(SimulatorInvariantError, match="memory state"):
        verify_against_golden(result, program)
