"""ParallelRunner: parallel/serial equivalence, ordered collection,
crash isolation, and the jobs-resolution rules."""

import multiprocessing
import os

import pytest

from repro.config import (
    ea_machine,
    inorder_machine,
    sst_machine,
)
from repro.errors import ConfigError, ExecutionError
from repro.sim.parallel import (
    ParallelRunner,
    SimTask,
    SimTaskError,
    resolve_jobs,
    run_simulations,
)
from repro.sim.sweep import sweep, sweep_many
from repro.workloads import hash_join, pointer_chase
from tests.conftest import small_hierarchy_config

import dataclasses


@pytest.fixture(scope="module")
def programs():
    return [hash_join(table_words=256, probes=32),
            pointer_chase(chains=2, nodes_per_chain=64, hops=40)]


def _matrix_tasks(programs):
    return [
        SimTask(config=config, program=program)
        for program in programs
        for config in (inorder_machine(small_hierarchy_config()),
                       sst_machine(small_hierarchy_config()),
                       ea_machine(small_hierarchy_config()))
    ]


# ---------------------------------------------------------------------------
# Equivalence: the pool path must be bit-identical to the serial path.
# ---------------------------------------------------------------------------


def test_parallel_results_identical_to_serial(programs):
    tasks = _matrix_tasks(programs)
    serial = ParallelRunner(jobs=1).run(tasks)
    parallel = ParallelRunner(jobs=2).run(tasks)
    assert len(serial) == len(tasks)
    for task, a, b in zip(tasks, serial, parallel):
        assert a == b, f"divergence at {task.label}"
        assert a.extra == b.extra


def test_results_come_back_in_submission_order(programs):
    tasks = _matrix_tasks(programs)
    outcomes = ParallelRunner(jobs=2).run_outcomes(tasks)
    assert [outcome.task for outcome in outcomes] == tasks


# ---------------------------------------------------------------------------
# Crash isolation.
# ---------------------------------------------------------------------------


def test_failing_task_isolated_with_skip(programs):
    good = SimTask(config=sst_machine(small_hierarchy_config()),
                   program=programs[0])
    # An absurdly small budget trips the runaway guard inside the worker.
    bad = SimTask(config=sst_machine(small_hierarchy_config()),
                  program=programs[0], max_instructions=10)
    results = ParallelRunner(jobs=2).run([good, bad, good],
                                         on_error="skip")
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    assert results[0] == results[2]


def test_failing_task_raises_after_batch(programs):
    bad = SimTask(config=sst_machine(small_hierarchy_config()),
                  program=programs[0], max_instructions=10)
    with pytest.raises(SimTaskError, match="ExecutionError"):
        run_simulations([bad])


def test_failure_detail_names_the_point(programs):
    bad = SimTask(config=sst_machine(small_hierarchy_config()),
                  program=programs[0], max_instructions=10)
    outcomes = ParallelRunner(jobs=1).run_outcomes([bad])
    assert not outcomes[0].ok
    assert "ExecutionError" in outcomes[0].error
    # The underlying guard really is the instruction budget.
    with pytest.raises(ExecutionError):
        raise ExecutionError(outcomes[0].error)


def test_on_error_validated(programs):
    task = SimTask(config=inorder_machine(small_hierarchy_config()),
                   program=programs[0])
    with pytest.raises(ValueError, match="on_error"):
        ParallelRunner(jobs=1).run([task], on_error="ignore")


# ---------------------------------------------------------------------------
# Jobs resolution.
# ---------------------------------------------------------------------------


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2  # explicit argument wins over env
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "four")
    with pytest.raises(ConfigError, match="REPRO_JOBS"):
        resolve_jobs()


def test_resolve_jobs_inline_inside_daemon(monkeypatch):
    class FakeProcess:
        daemon = True

    monkeypatch.setattr(multiprocessing, "current_process",
                        lambda: FakeProcess())
    assert resolve_jobs(8) == 1


# ---------------------------------------------------------------------------
# Sweeps ride on the runner.
# ---------------------------------------------------------------------------


def test_sweep_parallel_matches_serial(programs):
    def make_config(dq_size):
        base = sst_machine(small_hierarchy_config())
        return dataclasses.replace(
            base, sst=dataclasses.replace(base.sst, dq_size=dq_size),
            name=f"sst-dq{dq_size}")

    axis = [8, 16, 32]
    serial = sweep(programs[0], axis, make_config, jobs=1)
    parallel = sweep(programs[0], axis, make_config, jobs=2)
    assert [tag for tag, _ in serial] == axis
    assert serial == parallel


def test_sweep_many_forwards_verify(programs, monkeypatch):
    """Regression: sweep_many used to drop the verify flag silently."""
    seen = []
    import repro.sim.parallel as parallel_mod
    real_simulate = parallel_mod.simulate

    def recording_simulate(config, program, *, verify=False, **kwargs):
        seen.append(verify)
        return real_simulate(config, program, verify=verify, **kwargs)

    monkeypatch.setattr(parallel_mod, "simulate", recording_simulate)
    out = sweep_many(programs[:1], [8, 16],
                     lambda dq: sst_machine(small_hierarchy_config()),
                     verify=True, jobs=1)
    assert seen == [True, True]
    assert len(out[programs[0].name]) == 2


def test_sweep_skip_drops_diverging_point(programs):
    """One diverging axis point must not abort the whole sweep."""
    def make_config(dq_size):
        machine = sst_machine(small_hierarchy_config(), dq_size=dq_size)
        machine = dataclasses.replace(machine, name=f"sst-dq{dq_size}")
        if dq_size == 8:
            # Sabotage this point so it fails inside the worker, after
            # construction (the frozen-dataclass bypass keeps
            # MachineConfig validation out of the way).
            object.__setattr__(machine, "core_kind", "warp-drive")
        return machine

    points = sweep(programs[0], [4, 8, 16], make_config, on_error="skip")
    assert [value for value, _ in points] == [4, 16]
    assert all(result.instructions > 0 for _, result in points)

    # The default aborts loudly on the same sweep.
    with pytest.raises(SimTaskError, match="warp-drive"):
        sweep(programs[0], [4, 8, 16], make_config)
