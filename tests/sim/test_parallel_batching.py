"""Transparent lane batching inside ParallelRunner: groups of pending
in-order points that share a program shape and budget execute through
the vectorized timing engine with results, errors, cache keys and
firewall observations identical to the scalar path."""


import pytest

from repro.config import inorder_machine, sst_machine
from repro.sim.cache import ResultCache
from repro.sim.parallel import ParallelRunner, SimTask
from repro.sim.sweep import sweep
from repro.workloads.suite import WORKLOAD_FACTORIES, suite_params
from tests.conftest import small_hierarchy_config

np = pytest.importorskip("numpy")

LANES = 6


def lane_programs(name="compute-matmul", lanes=LANES, base_seed=700):
    params = suite_params("tiny")[name]
    return [
        WORKLOAD_FACTORIES[name](**params, seed=base_seed + lane,
                                 name=f"{name}@{lane}")
        for lane in range(lanes)
    ]


@pytest.fixture
def config():
    return inorder_machine(small_hierarchy_config())


def scalar_outcomes(tasks, monkeypatch, **runner_kwargs):
    monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", "0")
    try:
        return ParallelRunner(1, **runner_kwargs).run_outcomes(tasks)
    finally:
        monkeypatch.delenv("REPRO_TIMING_ENSEMBLE")


def test_batched_results_identical_to_scalar(config, monkeypatch):
    programs = lane_programs() + lane_programs("fp-stream")
    tasks = [SimTask(config=config, program=p, verify=True)
             for p in programs]
    batched = ParallelRunner(1).run_outcomes(tasks)
    scalar = scalar_outcomes(tasks, monkeypatch)
    assert [o.ok for o in batched] == [True] * len(tasks)
    for b, s in zip(batched, scalar):
        assert b.result == s.result


def test_batched_errors_identical_to_scalar(config, monkeypatch):
    tasks = [SimTask(config=config, program=p, max_instructions=10)
             for p in lane_programs()]
    batched = ParallelRunner(1).run_outcomes(tasks)
    scalar = scalar_outcomes(tasks, monkeypatch)
    for b, s in zip(batched, scalar):
        assert not b.ok and not s.ok
        assert (b.error, b.kind) == (s.error, s.kind)


def test_batched_points_share_cache_keys_with_scalar(config, tmp_path,
                                                     monkeypatch):
    tasks = [SimTask(config=config, program=p)
             for p in lane_programs()]
    warm = ResultCache(tmp_path)
    batched = ParallelRunner(1, cache=warm).run_outcomes(tasks)
    assert all(not o.cached for o in batched)
    # A scalar-path runner over the same cache loads every point warm.
    reread = scalar_outcomes(tasks, monkeypatch,
                             cache=ResultCache(tmp_path))
    assert all(o.cached for o in reread)
    for b, r in zip(batched, reread):
        assert b.result == r.result


def test_singletons_and_mixed_shapes_fall_back(config, monkeypatch):
    """One lane per shape -> no group forms, scalar path runs; the
    sweep result is unchanged either way."""
    calls = []
    import repro.sim.timing_ensemble as te

    real = te.run_timing_ensemble
    monkeypatch.setattr(
        "repro.sim.timing_ensemble.run_timing_ensemble",
        lambda *a, **k: calls.append(1) or real(*a, **k),
    )
    tasks = [SimTask(config=config, program=lane_programs(lanes=1)[0]),
             SimTask(config=config,
                     program=lane_programs("fp-stream", lanes=1)[0])]
    outcomes = ParallelRunner(1).run_outcomes(tasks)
    assert all(o.ok for o in outcomes)
    assert not calls


def test_ineligible_config_skips_batching(monkeypatch):
    """SST machines never route through the timing engine."""
    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("SST tasks must not batch")

    monkeypatch.setattr(
        "repro.sim.timing_ensemble.run_timing_ensemble", boom
    )
    cfg = sst_machine(small_hierarchy_config())
    tasks = [SimTask(config=cfg, program=p)
             for p in lane_programs(lanes=3)]
    outcomes = ParallelRunner(1).run_outcomes(tasks)
    assert all(o.ok for o in outcomes)


def test_engine_failure_falls_back_to_scalar(config, monkeypatch):
    def boom(*args, **kwargs):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(
        "repro.sim.timing_ensemble.run_timing_ensemble", boom
    )
    tasks = [SimTask(config=config, program=p)
             for p in lane_programs(lanes=3)]
    with pytest.warns(RuntimeWarning, match="falling back to scalar"):
        outcomes = ParallelRunner(1).run_outcomes(tasks)
    assert all(o.ok for o in outcomes)
    scalar = scalar_outcomes(tasks, monkeypatch)
    for b, s in zip(outcomes, scalar):
        assert b.result == s.result


def test_groups_wider_than_lane_cap_chunk(config, monkeypatch):
    monkeypatch.setenv("REPRO_ENSEMBLE_LANES", "2")
    widths = []
    import repro.sim.timing_ensemble as te

    real = te.run_timing_ensemble
    monkeypatch.setattr(
        "repro.sim.timing_ensemble.run_timing_ensemble",
        lambda cfg, progs, **k: (widths.append(len(progs)),
                                 real(cfg, progs, **k))[1],
    )
    tasks = [SimTask(config=config, program=p)
             for p in lane_programs(lanes=5)]
    outcomes = ParallelRunner(1).run_outcomes(tasks)
    assert all(o.ok for o in outcomes)
    assert widths == [2, 2, 1]  # whole group batches, in cap chunks


def test_kill_switch_restores_scalar_path(config, monkeypatch):
    monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", "0")

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("kill switch ignored")

    monkeypatch.setattr(
        "repro.sim.timing_ensemble.run_timing_ensemble", boom
    )
    tasks = [SimTask(config=config, program=p)
             for p in lane_programs(lanes=3)]
    assert all(o.ok for o in ParallelRunner(1).run_outcomes(tasks))


def test_sweep_batches_transparently(config, monkeypatch):
    """An e01-style seed sweep produces identical results with the
    engine on and off."""
    programs = lane_programs(lanes=4)

    def run(monkey_value):
        if monkey_value is not None:
            monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", monkey_value)
        try:
            return sweep(
                programs[0], range(4),
                lambda _: inorder_machine(small_hierarchy_config()),
            )
        finally:
            if monkey_value is not None:
                monkeypatch.delenv("REPRO_TIMING_ENSEMBLE")

    on = run(None)
    off = run("0")
    assert [r for _, r in on] == [r for _, r in off]


def test_firewall_observes_batched_lanes(config, tmp_path, monkeypatch):
    """REPRO_BASELINE capture sees batched points exactly like scalar
    ones: verify passes afterwards with batching on or off."""
    monkeypatch.setenv("REPRO_BASELINE_DIR", str(tmp_path))
    tasks = [SimTask(config=config, program=p)
             for p in lane_programs(lanes=3)]
    monkeypatch.setenv("REPRO_BASELINE", "capture")
    assert all(o.ok for o in ParallelRunner(1).run_outcomes(tasks))
    monkeypatch.setenv("REPRO_BASELINE", "verify")
    assert all(o.ok for o in ParallelRunner(1).run_outcomes(tasks))
    # Scalar re-runs verify against the batched captures.
    monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", "0")
    assert all(o.ok for o in ParallelRunner(1).run_outcomes(tasks))
