"""Trace capture and serialisation."""

import pytest

from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.trace import BranchEvent, MemEvent, Trace, record_trace


@pytest.fixture
def small_trace():
    program = assemble("""
        movi r1, 0x100
        movi r2, 3
    loop:
        ld   r3, 0(r1)
        st   r3, 8(r1)
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    """, name="tiny")
    return record_trace(program)


def test_event_counts(small_trace):
    assert len(small_trace.mem_events) == 6  # 3 loads + 3 stores
    assert len(small_trace.branch_events) == 3
    assert small_trace.instructions == 2 + 4 * 3 + 1


def test_memory_event_contents(small_trace):
    loads = [e for e in small_trace.mem_events if not e.is_store]
    stores = [e for e in small_trace.mem_events if e.is_store]
    assert all(e.addr == 0x100 for e in loads)
    assert all(e.addr == 0x108 for e in stores)


def test_branch_outcomes(small_trace):
    outcomes = [e.taken for e in small_trace.branch_events]
    assert outcomes == [True, True, False]


def test_events_in_program_order(small_trace):
    kinds = ["S" if isinstance(e, MemEvent) and e.is_store
             else "L" if isinstance(e, MemEvent) else "B"
             for e in small_trace.events]
    assert kinds == ["L", "S", "B"] * 3


def test_roundtrip(small_trace):
    text = small_trace.dumps()
    loaded = Trace.loads(text)
    assert loaded.program_name == small_trace.program_name
    assert loaded.instructions == small_trace.instructions
    assert loaded.events == small_trace.events


def test_load_rejects_garbage():
    with pytest.raises(ReproError, match="malformed"):
        Trace.loads("X 1 2\n")
    with pytest.raises(ReproError, match="malformed"):
        Trace.loads("L 1\n")


def test_load_skips_comments_and_blanks():
    trace = Trace.loads("# trace demo insts=5\n\nL 3 0x10\nB 4 1\n")
    assert trace.program_name == "demo"
    assert trace.instructions == 5
    assert trace.events == [MemEvent(3, 0x10, False), BranchEvent(4, True)]
