"""Trace-driven analyses."""

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    PredictorKind,
)
from repro.trace import (
    cache_sweep,
    predictability,
    record_trace,
    reuse_distances,
    working_set,
)
from repro.workloads import array_stream, branchy_reduce, hash_join


@pytest.fixture(scope="module")
def stream_trace():
    return record_trace(array_stream(words=256))


@pytest.fixture(scope="module")
def random_trace():
    return record_trace(hash_join(table_words=1 << 10, probes=256))


def test_working_set_of_stream(stream_trace):
    footprint = working_set(stream_trace, line_bytes=64)
    # 256 sequential words = 2 KiB = 32 lines (+ the result word).
    assert footprint["lines"] == 33
    assert footprint["references"] == 257
    assert footprint["pages"] <= 2


def test_cache_sweep_monotone_in_size(random_trace):
    configs = [
        CacheConfig(size_bytes=size, assoc=4)
        for size in (1024, 4096, 16384)
    ]
    rates = [rate for _, rate in cache_sweep(random_trace, configs)]
    assert rates[0] >= rates[1] >= rates[2]
    assert rates[0] > 0


def test_stream_has_one_miss_per_line(stream_trace):
    (_, rate), = cache_sweep(
        stream_trace, [CacheConfig(size_bytes=1024, assoc=2)]
    )
    # Sequential stream: ~1 miss per 8 words.
    assert rate == pytest.approx(33 / 257, abs=0.02)


def test_reuse_distances_stream_is_cold(stream_trace):
    histogram = reuse_distances(stream_trace)
    # A pure stream never reuses a line except intra-line words at
    # distance 0.
    assert histogram.max <= 0


def test_reuse_distance_cdf_matches_cache(random_trace):
    """Stack-distance identity: hits at distance < N  ==  hits of an
    N-line fully-associative LRU cache."""
    capacity = 64
    histogram = reuse_distances(random_trace)
    expected_hits = sum(
        count for distance, count in histogram.items()
        if 0 <= distance < capacity
    )
    config = CacheConfig(size_bytes=capacity * 64, assoc=capacity)
    (_, rate), = cache_sweep(random_trace, [config])
    measured_hits = round((1 - rate) * len(random_trace.mem_events))
    assert measured_hits == expected_hits


def test_predictability_orders_workloads():
    hard = record_trace(branchy_reduce(iterations=256, data_words=256,
                                       biased=False))
    easy = record_trace(branchy_reduce(iterations=256, data_words=256,
                                       biased=True))
    config = BranchPredictorConfig(kind=PredictorKind.GSHARE)
    assert predictability(easy, config) > predictability(hard, config)


def test_predictability_empty_trace():
    trace = record_trace(array_stream(words=4))
    no_branches = type(trace)(trace.program_name, trace.instructions, [
        event for event in trace.events
        if not hasattr(event, "taken")
    ])
    assert predictability(no_branches) == 1.0
