"""Assembler syntax, label resolution, data directives, and errors."""

import pytest

from repro.errors import AssemblyError, ReproError
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op


def test_basic_program():
    program = assemble("""
        movi r1, 5
        addi r2, r1, 3
        halt
    """)
    assert len(program) == 3
    assert program[0].op is Op.MOVI and program[0].imm == 5
    assert program[1].op is Op.ADDI and program[1].rs1 == 1
    assert program[2].op is Op.HALT


def test_labels_resolve_forward_and_backward():
    program = assemble("""
    start:
        beq r1, r2, end
        jal r0, start
    end:
        halt
    """)
    assert program[0].target == 2
    assert program[1].target == 0


def test_label_on_same_line_as_instruction():
    program = assemble("""
    loop: addi r1, r1, -1
        bne r1, r0, loop
        halt
    """)
    assert program.labels["loop"] == 0
    assert program[1].target == 0


def test_memory_operands():
    program = assemble("""
        ld r1, 8(r2)
        st r3, -16(sp)
        prefetch 0(r1)
        halt
    """)
    load, store, prefetch = program[0], program[1], program[2]
    assert (load.rd, load.rs1, load.imm) == (1, 2, 8)
    assert (store.rs2, store.rs1, store.imm) == (3, 30, -16)
    assert (prefetch.rs1, prefetch.imm) == (1, 0)


def test_data_directive_places_words():
    program = assemble("""
        .data 0x1000: 1 2 0xff
        halt
    """)
    assert [(w.addr, w.value) for w in program.data] == [
        (0x1000, 1), (0x1008, 2), (0x1010, 0xFF),
    ]


def test_negative_data_words_wrap_to_unsigned():
    program = assemble("""
        .data 0x20: -1
        halt
    """)
    assert program.data[0].value == 2**64 - 1


def test_comments_and_blank_lines_ignored():
    program = assemble("""
        ; full line comment
        movi r1, 1   # trailing comment
                     ; another
        halt
    """)
    assert len(program) == 2


def test_hex_and_negative_immediates():
    program = assemble("""
        movi r1, 0xdead
        addi r2, r1, -5
        halt
    """)
    assert program[0].imm == 0xDEAD
    assert program[1].imm == -5


def test_unknown_opcode_reports_line():
    with pytest.raises(AssemblyError) as excinfo:
        assemble("movi r1, 1\nbogus r1, r2\nhalt")
    assert "line 2" in str(excinfo.value)
    assert "bogus" in str(excinfo.value)


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError, match="undefined label"):
        assemble("beq r1, r2, nowhere\nhalt")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError, match="duplicate label"):
        assemble("a:\nnop\na:\nhalt")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblyError, match="takes 3 operand"):
        assemble("add r1, r2\nhalt")


def test_bad_memory_operand_rejected():
    with pytest.raises(AssemblyError, match="memory operand"):
        assemble("ld r1, r2\nhalt")


def test_program_without_halt_rejected():
    with pytest.raises(ReproError, match="no HALT"):
        assemble("movi r1, 1")


def test_jalr_form():
    program = assemble("jalr r0, ra, 0\nhalt")
    inst = program[0]
    assert inst.op is Op.JALR
    assert (inst.rd, inst.rs1, inst.imm) == (0, 31, 0)


def test_numeric_branch_target_allowed():
    program = assemble("beq r0, r0, 1\nhalt")
    assert program[0].target == 1
