import pytest

from repro.errors import AssemblyError
from repro.isa.registers import (
    RA_REG,
    REG_COUNT,
    SP_REG,
    ZERO_REG,
    parse_reg,
    reg_name,
)


def test_parse_numeric_registers():
    for index in range(REG_COUNT):
        assert parse_reg(f"r{index}") == index
        assert parse_reg(f"R{index}") == index


def test_aliases():
    assert parse_reg("zero") == ZERO_REG
    assert parse_reg("ra") == RA_REG
    assert parse_reg("sp") == SP_REG


@pytest.mark.parametrize("bad", ["r32", "r-1", "x5", "", "r", "r1x", "5"])
def test_bad_registers_rejected(bad):
    with pytest.raises(AssemblyError):
        parse_reg(bad)


def test_reg_name_roundtrip():
    for index in range(REG_COUNT):
        assert parse_reg(reg_name(index)) == index


def test_reg_name_out_of_range():
    with pytest.raises(ValueError):
        reg_name(REG_COUNT)
    with pytest.raises(ValueError):
        reg_name(-1)
