"""Instruction record: source/dest introspection and disassembly."""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def test_source_regs_order():
    add = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    assert add.source_regs() == (2, 3)
    addi = Instruction(Op.ADDI, rd=1, rs1=2, imm=1)
    assert addi.source_regs() == (2,)
    movi = Instruction(Op.MOVI, rd=1, imm=1)
    assert movi.source_regs() == ()


def test_store_sources():
    store = Instruction(Op.ST, rs1=4, rs2=5, imm=8)
    assert store.source_regs() == (4, 5)
    assert not store.writes_reg
    assert store.is_store and store.is_mem and not store.is_load


def test_load_flags():
    load = Instruction(Op.LD, rd=1, rs1=2)
    assert load.writes_reg and load.is_load and load.is_mem


def test_control_flags():
    branch = Instruction(Op.BEQ, rs1=1, rs2=2, target=4)
    assert branch.is_control and branch.is_cond_branch
    jump = Instruction(Op.JAL, rd=31, target=0)
    assert jump.is_control and not jump.is_cond_branch


def test_immutability():
    inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    try:
        inst.rd = 5  # type: ignore[misc]
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_disassembly_smoke():
    cases = [
        Instruction(Op.MOVI, rd=1, imm=5),
        Instruction(Op.ADD, rd=1, rs1=2, rs2=3),
        Instruction(Op.ADDI, rd=1, rs1=2, imm=-1),
        Instruction(Op.LD, rd=1, rs1=2, imm=8),
        Instruction(Op.ST, rs2=1, rs1=2, imm=8),
        Instruction(Op.BEQ, rs1=1, rs2=2, target=3, label="loop"),
        Instruction(Op.JAL, rd=31, target=7),
        Instruction(Op.JALR, rd=0, rs1=31, imm=0),
        Instruction(Op.PREFETCH, rs1=2, imm=0),
        Instruction(Op.MEMBAR),
        Instruction(Op.HALT),
    ]
    for inst in cases:
        text = str(inst)
        assert inst.op.value.split("i")[0] in text or inst.op.value in text
    assert "loop" in str(cases[5])
