"""ProgramBuilder: emission, label fixups, data layout, validation."""

import pytest

from repro.errors import ReproError
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import run_program
from repro.isa.opcodes import Op


def test_forward_label_backpatched():
    builder = ProgramBuilder()
    builder.beq(0, 0, "end")
    builder.movi(1, 1)
    builder.label("end")
    builder.halt()
    program = builder.build()
    assert program[0].target == 2


def test_backward_label():
    builder = ProgramBuilder()
    builder.movi(1, 3)
    builder.label("loop")
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "loop")
    builder.halt()
    program = builder.build()
    assert program[2].target == 1
    state = run_program(program)
    assert state.regs[1] == 0


def test_undefined_label_raises_at_build():
    builder = ProgramBuilder()
    builder.jal(0, "missing")
    builder.halt()
    with pytest.raises(ReproError, match="undefined label"):
        builder.build()


def test_duplicate_label_raises():
    builder = ProgramBuilder()
    builder.label("x")
    with pytest.raises(ReproError, match="duplicate"):
        builder.label("x")


def test_data_words_layout():
    builder = ProgramBuilder()
    builder.data_words(0x100, [1, 2, 3])
    builder.halt()
    program = builder.build()
    assert [(w.addr, w.value) for w in program.data] == [
        (0x100, 1), (0x108, 2), (0x110, 3),
    ]


def test_here_tracks_position():
    builder = ProgramBuilder()
    assert builder.here == 0
    builder.nop()
    assert builder.here == 1


def test_branch_helper_rejects_non_branch():
    builder = ProgramBuilder()
    with pytest.raises(ReproError, match="not a branch"):
        builder.branch(Op.ADD, 1, 2, "x")


def test_numeric_target_needs_no_fixup():
    builder = ProgramBuilder()
    builder.beq(0, 0, 1)
    builder.halt()
    assert builder.build()[0].target == 1


def test_built_program_executes():
    builder = ProgramBuilder("sum")
    builder.movi(1, 0)
    builder.movi(2, 5)
    builder.label("loop")
    builder.add(1, 1, 2)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, "loop")
    builder.halt()
    state = run_program(builder.build())
    assert state.regs[1] == 5 + 4 + 3 + 2 + 1
