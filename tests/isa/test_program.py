"""Program container: validation, labels, disassembly."""

import pytest

from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import DataWord, Program


def test_validate_rejects_empty():
    with pytest.raises(ReproError, match="empty"):
        Program([]).validate()


def test_validate_rejects_out_of_range_target():
    program = Program([
        Instruction(Op.BEQ, rs1=0, rs2=0, target=99),
        Instruction(Op.HALT),
    ])
    with pytest.raises(ReproError, match="targets 99"):
        program.validate()


def test_validate_requires_halt():
    program = Program([Instruction(Op.NOP)])
    with pytest.raises(ReproError, match="no HALT"):
        program.validate()


def test_misaligned_data_word_rejected():
    with pytest.raises(ReproError, match="misaligned"):
        DataWord(addr=0x101, value=1)


def test_label_of():
    program = assemble("""
    begin:
        nop
    done:
        halt
    """)
    assert program.label_of(0) == "begin"
    assert program.label_of(1) == "done"
    assert program.label_of(99) is None


def test_disassemble_contains_labels_and_indices():
    program = assemble("""
    top:
        addi r1, r1, 1
        bne  r1, r2, top
        halt
    """)
    listing = program.disassemble()
    assert "top:" in listing
    assert "addi r1, r1, 1" in listing


def test_iteration_and_indexing(countdown_program):
    assert len(list(countdown_program)) == len(countdown_program)
    assert countdown_program[0].op is Op.MOVI
