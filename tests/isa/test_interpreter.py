"""Golden-model interpreter semantics."""

import pytest

from repro.errors import ExecutionError
from repro.isa.assembler import assemble
from repro.isa.interpreter import ArchState, Interpreter, run_program


def test_arithmetic_loop(countdown_program):
    state = run_program(countdown_program)
    assert state.regs[2] == sum(range(1, 11))
    assert state.regs[1] == 0


def test_zero_register_ignores_writes():
    state = run_program(assemble("""
        movi r0, 99
        addi r1, r0, 1
        halt
    """))
    assert state.regs[0] == 0
    assert state.regs[1] == 1


def test_loads_and_stores():
    state = run_program(assemble("""
        .data 0x100: 41
        movi r1, 0x100
        ld   r2, 0(r1)
        addi r2, r2, 1
        st   r2, 8(r1)
        halt
    """))
    assert state.memory.read(0x108) == 42


def test_uninitialised_memory_reads_zero():
    state = run_program(assemble("""
        movi r1, 0x500
        ld   r2, 0(r1)
        halt
    """))
    assert state.regs[2] == 0


def test_call_and_return():
    state = run_program(assemble("""
        movi r1, 5
        jal  ra, double
        addi r2, r1, 0
        halt
    double:
        add  r1, r1, r1
        jalr r0, ra, 0
    """))
    assert state.regs[2] == 10


def test_misaligned_load_raises():
    program = assemble("""
        movi r1, 3
        ld   r2, 0(r1)
        halt
    """)
    with pytest.raises(ExecutionError, match="misaligned"):
        run_program(program)


def test_runaway_loop_raises():
    program = assemble("""
    forever:
        jal r0, forever
        halt
    """)
    with pytest.raises(ExecutionError, match="without HALT"):
        run_program(program, max_steps=1000)


def test_indirect_jump_out_of_range_raises():
    program = assemble("""
        movi r1, 4096
        jalr r0, r1, 0
        halt
    """)
    with pytest.raises(ExecutionError, match="outside program"):
        run_program(program)


def test_stats_collected(countdown_program):
    interp = Interpreter(countdown_program)
    interp.run()
    stats = interp.stats
    assert stats.instructions == 2 + 3 * 10 + 1
    assert stats.branches == 10
    assert stats.branches_taken == 9


def test_step_after_halt_is_noop(countdown_program):
    interp = Interpreter(countdown_program)
    interp.run()
    before = interp.stats.instructions
    interp.step()
    assert interp.stats.instructions == before


def test_membar_prefetch_nop_have_no_arch_effect():
    state = run_program(assemble("""
        movi r1, 0x100
        nop
        membar
        prefetch 0(r1)
        halt
    """))
    assert state.regs[1] == 0x100
    assert len(state.memory) == 0


def test_same_architectural_state():
    a = ArchState.fresh()
    b = ArchState.fresh()
    assert a.same_architectural_state(b)
    a.write_reg(3, 7)
    assert not a.same_architectural_state(b)
