"""Unit tests for the basic-block dispatch engine (repro.isa.blockcache):
row decode fidelity, CFG block partitioning, fingerprint-keyed process
caching, and the REPRO_BLOCK_DISPATCH kill switch."""

import pytest

from repro.isa import blockcache
from repro.isa.blockcache import (
    K_ALU,
    K_BRANCH,
    K_HALT,
    K_LOAD,
    K_STORE,
    KIND_OF_CLASS,
    R_FN,
    R_IMM,
    R_INST,
    R_KIND,
    R_RD,
    R_RS1,
    R_RS2,
    R_SOURCES,
    R_TARGET,
    R_USES_IMM,
    R_WRITES,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import OpClass
from repro.workloads import full_suite


@pytest.fixture(autouse=True)
def _fresh_cache():
    blockcache.clear_cache()
    yield
    blockcache.clear_cache()


def sample_program(name="blockcache-sample"):
    builder = ProgramBuilder(name)
    builder.data_words(0x1000, [7, 11, 13])
    builder.movi(1, 0x1000)
    builder.movi(2, 3)
    builder.label("top")
    builder.ld(3, 1, 0)
    builder.add(4, 4, 3)
    builder.st(4, 1, 8)
    builder.addi(1, 1, 8)
    builder.addi(2, 2, -1)
    builder.bne(2, 0, "top")
    builder.halt()
    return builder.build()


def test_rows_mirror_instruction_metadata():
    for program in [sample_program()] + full_suite("tiny"):
        rows = blockcache.decode_rows(program)
        assert len(rows) == len(program.instructions)
        for row, inst in zip(rows, program.instructions):
            assert row[R_KIND] == KIND_OF_CLASS[inst.op_class]
            assert row[R_RD] == inst.rd
            assert row[R_RS1] == inst.rs1
            assert row[R_RS2] == inst.rs2
            assert row[R_IMM] == inst.imm
            assert row[R_TARGET] == inst.target
            assert row[R_SOURCES] == inst.sources
            assert row[R_WRITES] == inst.writes_reg
            assert row[R_USES_IMM] == inst.alu_uses_imm
            assert row[R_INST] is inst
            if row[R_KIND] <= blockcache.K_DIV:
                assert row[R_FN] is inst.alu_fn
            elif row[R_KIND] == K_BRANCH:
                assert row[R_FN] is inst.branch_fn
            else:
                assert row[R_FN] is None


def test_kind_codes_cover_every_op_class():
    assert set(KIND_OF_CLASS) == set(OpClass)
    assert sorted(KIND_OF_CLASS.values()) == list(range(K_HALT + 1))
    # The fast-path predicates the cores rely on.
    assert K_ALU < K_LOAD < K_STORE


def test_blocks_partition_the_program():
    program = sample_program()
    block_program = blockcache.get_block_program(program)
    blocks = sorted(block_program.blocks)
    assert blocks[0][0] == 0
    assert blocks[-1][1] == len(program.instructions)
    for (_, end), (next_start, _) in zip(blocks, blocks[1:]):
        assert end == next_start
    # The loop back-edge target must start a block.
    targets = {inst.target for inst in program.instructions
               if inst.op_class is OpClass.BRANCH}
    assert targets <= {start for start, _ in blocks}


def test_cache_shares_decode_across_equal_programs():
    first = blockcache.get_block_program(sample_program())
    second = blockcache.get_block_program(sample_program())
    assert first is second
    # A different program (name participates in the fingerprint) must
    # not collide.
    other = blockcache.get_block_program(sample_program(name="other"))
    assert other is not first


def test_block_fns_compiled_lazily_and_once():
    block_program = blockcache.get_block_program(sample_program())
    assert block_program._block_fns is None
    fns = block_program.block_fns
    assert fns is block_program.block_fns
    assert set(fns) == {start for start, _ in block_program.blocks}
    for start, (fn, length) in fns.items():
        assert callable(fn)
        assert length == dict(block_program.blocks)[start] - start


def test_env_flag_disables_engine(monkeypatch):
    monkeypatch.delenv(blockcache.ENV_FLAG, raising=False)
    assert blockcache.enabled()
    monkeypatch.setenv(blockcache.ENV_FLAG, "0")
    assert not blockcache.enabled()
    # rows_for still decodes (rows are pure metadata) but bypasses the
    # process cache entirely.
    program = sample_program()
    rows_one = blockcache.rows_for(program)
    rows_two = blockcache.rows_for(program)
    assert rows_one == rows_two
    assert rows_one is not rows_two
    assert not blockcache._CACHE
    monkeypatch.setenv(blockcache.ENV_FLAG, "1")
    assert blockcache.rows_for(program) is blockcache.rows_for(program)
