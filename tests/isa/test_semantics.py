"""Unit tests of the shared ALU/branch semantics."""

import pytest

from repro.errors import SimulatorInvariantError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import (
    MASK64,
    alu_result,
    branch_taken,
    compute_value,
    effective_address,
    to_signed,
    to_unsigned,
)


def test_signedness_roundtrip():
    assert to_signed(MASK64) == -1
    assert to_unsigned(-1) == MASK64
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed(5) == 5


def test_add_wraps():
    assert alu_result(Op.ADD, MASK64, 1) == 0
    assert alu_result(Op.ADD, 2, 3) == 5


def test_sub_wraps():
    assert alu_result(Op.SUB, 0, 1) == MASK64


def test_mul_wraps():
    assert alu_result(Op.MUL, 1 << 63, 2) == 0
    assert alu_result(Op.MUL, 3, 4) == 12


def test_div_signed_truncates_toward_zero():
    assert to_signed(alu_result(Op.DIV, to_unsigned(-7), 2)) == -3
    assert alu_result(Op.DIV, 7, 2) == 3


def test_div_by_zero_is_all_ones():
    assert alu_result(Op.DIV, 42, 0) == MASK64


def test_rem_by_zero_is_dividend():
    assert alu_result(Op.REM, 42, 0) == 42


def test_rem_signs_follow_dividend():
    assert to_signed(alu_result(Op.REM, to_unsigned(-7), 2)) == -1
    assert alu_result(Op.REM, 7, to_unsigned(-2)) == 1


def test_shifts_mask_amount_to_six_bits():
    assert alu_result(Op.SLL, 1, 64) == 1
    assert alu_result(Op.SRL, 8, 65) == 4


def test_sra_is_arithmetic():
    assert to_signed(alu_result(Op.SRA, to_unsigned(-8), 1)) == -4
    assert alu_result(Op.SRL, to_unsigned(-8), 1) == (MASK64 - 7) >> 1


def test_slt_vs_sltu_on_negative():
    minus_one = to_unsigned(-1)
    assert alu_result(Op.SLT, minus_one, 1) == 1
    assert alu_result(Op.SLTU, minus_one, 1) == 0


def test_alu_result_rejects_non_alu():
    with pytest.raises(SimulatorInvariantError):
        alu_result(Op.LD, 0, 0)


@pytest.mark.parametrize("op,a,b,expected", [
    (Op.BEQ, 5, 5, True),
    (Op.BEQ, 5, 6, False),
    (Op.BNE, 5, 6, True),
    (Op.BLT, to_unsigned(-1), 0, True),
    (Op.BLTU, to_unsigned(-1), 0, False),
    (Op.BGE, 0, to_unsigned(-1), True),
    (Op.BGEU, 0, to_unsigned(-1), False),
])
def test_branch_conditions(op, a, b, expected):
    assert branch_taken(op, a, b) is expected


def test_branch_taken_rejects_non_branch():
    with pytest.raises(SimulatorInvariantError):
        branch_taken(Op.ADD, 0, 0)


def test_effective_address_wraps():
    assert effective_address(MASK64, 9) == 8


def test_compute_value_selects_immediate_forms():
    addi = Instruction(Op.ADDI, rd=1, rs1=2, imm=5)
    assert compute_value(addi, 10, 999) == 15  # b ignored
    add = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    assert compute_value(add, 10, 999) == 1009
    movi = Instruction(Op.MOVI, rd=1, imm=-1)
    assert compute_value(movi, 123, 456) == MASK64
