"""Static classification of the ISA: every opcode has a class, the
read/write sets are self-consistent."""

import pytest

from repro.isa.opcodes import (
    BRANCH_OPS,
    CONTROL_OPS,
    Op,
    OpClass,
    READS_RS1,
    READS_RS2,
    WRITES_RD,
)


def test_every_opcode_is_classified():
    for op in Op:
        assert isinstance(op.op_class, OpClass)


def test_mnemonic_roundtrip():
    for op in Op:
        assert Op.from_mnemonic(op.value) is op
        assert Op.from_mnemonic(op.value.upper()) is op


def test_unknown_mnemonic_raises():
    with pytest.raises(KeyError):
        Op.from_mnemonic("frobnicate")


def test_loads_write_and_read_base():
    assert Op.LD in WRITES_RD
    assert Op.LD in READS_RS1
    assert Op.LD not in READS_RS2


def test_stores_read_both_and_write_nothing():
    assert Op.ST not in WRITES_RD
    assert Op.ST in READS_RS1
    assert Op.ST in READS_RS2


def test_movi_reads_no_registers():
    assert Op.MOVI not in READS_RS1
    assert Op.MOVI not in READS_RS2
    assert Op.MOVI in WRITES_RD


def test_branches_read_both_write_none():
    for op in BRANCH_OPS:
        assert op in READS_RS1
        assert op in READS_RS2
        assert op not in WRITES_RD


def test_control_ops_cover_branches_and_jumps():
    assert BRANCH_OPS < CONTROL_OPS
    assert Op.JAL in CONTROL_OPS
    assert Op.JALR in CONTROL_OPS
    assert Op.NOP not in CONTROL_OPS


def test_jumps_write_link_register():
    assert Op.JAL in WRITES_RD
    assert Op.JALR in WRITES_RD
    assert Op.JALR in READS_RS1
    assert Op.JAL not in READS_RS1


def test_immediate_alu_ops_read_rs1_only():
    for op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI,
               Op.SRAI, Op.SLTI):
        assert op in READS_RS1
        assert op not in READS_RS2
        assert op in WRITES_RD


def test_mul_div_classes():
    assert Op.MUL.op_class is OpClass.MUL
    assert Op.DIV.op_class is OpClass.DIV
    assert Op.REM.op_class is OpClass.DIV
