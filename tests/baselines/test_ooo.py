"""OoO core: window-limited overlap, disambiguation, redirects."""

from repro.baselines.ooo import OoOCore
from repro.config import OoOConfig
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from tests.conftest import small_hierarchy_config


def run(source_or_program, config=None, latency=200, mshr=16):
    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=latency,
                                                       mshr=mshr))
    core = OoOCore(program, hierarchy, config or OoOConfig())
    result = core.run()
    verify_against_golden(result, program)
    return result


INDEPENDENT_MISSES = """
    movi r1, 0x100000
    movi r2, 0x200000
    movi r3, 0x300000
    ld   r4, 0(r1)
    ld   r5, 0(r2)
    ld   r6, 0(r3)
    add  r7, r4, r5
    add  r7, r7, r6
    halt
"""


def test_architectural_correctness(countdown_program):
    result = run(countdown_program)
    assert result.state.regs[2] == sum(range(1, 11))


def test_independent_misses_overlap():
    result = run(INDEPENDENT_MISSES, latency=200)
    # Serial would be ~600; overlapped is a bit over one miss.
    assert result.cycles < 400


def test_dependent_misses_serialise(miss_chain_program):
    result = run(miss_chain_program, latency=200)
    assert result.cycles > 3 * 200


def test_rob_size_bounds_overlap():
    # Many independent miss pairs separated by filler: a small ROB
    # cannot hold enough instructions to reach the next miss.
    blocks = []
    for index in range(8):
        blocks.append(f"movi r1, {0x100000 + index * 0x10000}")
        blocks.append("ld r2, 0(r1)")
        blocks.append("add r3, r3, r2")  # use forces eventual wait
        blocks.extend("addi r4, r4, 1" for _ in range(30))
    source = "\n".join(blocks) + "\nhalt"
    small = run(source, OoOConfig(rob_size=16, iq_size=16, lsq_size=16))
    large = run(source, OoOConfig(rob_size=256, iq_size=64, lsq_size=64))
    assert large.cycles < small.cycles * 0.7


def test_conservative_loads_wait_for_store_addresses():
    source = """
        movi r1, 0x100000
        movi r2, 0x200000
        movi r3, 7
        st   r3, 0(r1)
        ld   r4, 0(r2)
        halt
    """
    conservative = run(source, OoOConfig(perfect_disambiguation=False))
    oracle = run(source, OoOConfig(perfect_disambiguation=True))
    assert oracle.cycles <= conservative.cycles


def test_store_to_load_forwarding():
    result = run("""
        movi r1, 0x100000
        movi r2, 42
        st   r2, 0(r1)
        ld   r3, 0(r1)
        addi r4, r3, 1
        halt
    """, latency=300)
    assert result.extra["ooo"].load_forwards >= 1
    # Forwarding means the load does not pay the miss latency twice.
    assert result.state.regs[4] == 43


def test_mispredicted_branches_stall_fetch():
    source = """
        movi r1, 200
        movi r3, 12345
        movi r4, 6364136223846793005
        movi r5, 1442695040888963407
        movi r6, 0
    loop:
        mul  r3, r3, r4
        add  r3, r3, r5
        srli r7, r3, 33
        andi r7, r7, 1
        beq  r7, r0, skip
        addi r6, r6, 1
    skip:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    from repro.config import BranchPredictorConfig

    cheap = run(source, OoOConfig(
        predictor=BranchPredictorConfig(mispredict_penalty=0)))
    costly = run(source, OoOConfig(
        predictor=BranchPredictorConfig(mispredict_penalty=20)))
    assert costly.cycles > cheap.cycles


def test_membar_orders_memory():
    result = run("""
        movi r1, 0x100000
        ld   r2, 0(r1)
        membar
        ld   r3, 8(r1)
        halt
    """)
    assert result.cycles > 200  # second load waited for the first


def test_wide_beats_narrow_on_ilp():
    source = "\n".join(
        f"movi r{1 + i % 8}, {i}" for i in range(64)
    ) + "\nhalt"
    narrow = run(source, OoOConfig(fetch_width=1, issue_width=1,
                                   commit_width=1, rob_size=32,
                                   iq_size=16, lsq_size=16))
    wide = run(source, OoOConfig(fetch_width=4, issue_width=4,
                                 commit_width=4, rob_size=32,
                                 iq_size=16, lsq_size=16))
    assert wide.cycles < narrow.cycles


def test_stats_exposed(countdown_program):
    result = run(countdown_program)
    assert result.extra["ooo"].dispatched == result.instructions - 1
    assert "rob" in result.extra
