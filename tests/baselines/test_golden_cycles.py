"""Cycle-count bit-identity against pre-optimization golden results.

``golden_cycles.json`` pins the exact cycles, retired instruction
counts, architectural register state (order-weighted checksum) and —
for the SST family — the per-mode cycle breakdown and episode count of
every core model on three tiny workloads, captured at the commit
*before* the event-driven fast-forwarding / memory fast-path rework
landed.  The optimizations are pure simulator-speed work: any drift in
these numbers is a timing-model regression, not tuning.

A multicore golden pins the quantum-interleaved scheduler the same way
(the quantum-skip fast-forward must not move a single access).

The same scenarios also ride the behavioral baseline firewall
(:mod:`repro.regress`): every golden run is captured into a governed
store, promoted, and re-verified — so the legacy JSON assertions and
the firewall must agree with each other, and a doctored baseline
record must turn verification red.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.baselines.core_base import DEFAULT_MAX_INSTRUCTIONS
from repro.cmp.multicore import Multicore
from repro.config import (
    HierarchyConfig,
    SSTConfig,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.regress.firewall import (
    BaselineDivergenceError,
    BaselineFirewall,
    multicore_key,
)
from repro.regress.store import BaselineStore
from repro.sim.cache import result_key
from repro.sim.machine import Machine
from repro.workloads import full_suite

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_cycles.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

MACHINES = {
    "inorder": inorder_machine,
    "ooo": ooo_machine,
    "sst": sst_machine,
    "ea": ea_machine,
    "scout": scout_machine,
}

MULTICORE_PROGRAMS = ("oltp-chase", "int-branchy", "compute-matmul",
                      "fp-stream")


@pytest.fixture(scope="module")
def tiny_suite():
    return {program.name: program for program in full_suite("tiny")}


@pytest.fixture(scope="module")
def core_runs(tiny_suite):
    """(config, program, result) per golden key — simulated once for
    both the legacy JSON assertions and the firewall round-trip."""
    runs = {}
    for key in GOLDEN["cores"]:
        machine_name, workload = key.split("/")
        config = MACHINES[machine_name]()
        program = tiny_suite[workload]
        runs[key] = (config, program, Machine(config).run(program))
    return runs


@pytest.fixture(scope="module")
def multicore_run(tiny_suite):
    multicore = Multicore(
        HierarchyConfig(), [SSTConfig()] * len(MULTICORE_PROGRAMS),
        [tiny_suite[name] for name in MULTICORE_PROGRAMS],
    )
    return multicore, multicore.run()


def _reg_crc(result) -> int:
    """Order-weighted checksum of the final architectural registers."""
    return sum(value * (index + 1)
               for index, value in enumerate(result.state.regs)
               ) & 0xFFFFFFFFFFFFFFFF


def _observed(result) -> dict:
    entry = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "reg_crc": _reg_crc(result),
    }
    sst_stats = result.extra.get("sst")
    if sst_stats is not None:
        entry["mode_cycles"] = dict(sst_stats.mode_cycles)
        entry["episodes"] = sst_stats.episodes
    return entry


@pytest.mark.parametrize("key", sorted(GOLDEN["cores"]))
def test_core_golden(key, core_runs):
    _, _, result = core_runs[key]
    assert _observed(result) == GOLDEN["cores"][key]


def test_multicore_golden(multicore_run):
    _, result = multicore_run
    observed = {
        "makespan": result.makespan,
        "aggregate_ipc": round(result.aggregate_ipc, 12),
        "per_core": [
            {"name": core.core_name, "cycles": core.cycles,
             "instructions": core.instructions}
            for core in result.per_core
        ],
    }
    assert observed == GOLDEN["multicore"]


# ---------------------------------------------------------------------------
# The same scenarios through the baseline firewall.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_store(tmp_path_factory, core_runs, multicore_run):
    """Every golden scenario captured into a governed store and
    promoted to ``approved``."""
    store = BaselineStore(tmp_path_factory.mktemp("golden-baselines"))
    firewall = BaselineFirewall(store, mode="capture", note="golden")
    for config, program, result in core_runs.values():
        action = firewall.observe_point(
            config, program, DEFAULT_MAX_INSTRUCTIONS, result)
        assert action == "captured"
    multicore, result = multicore_run
    assert firewall.observe_multicore(
        multicore, result, machine="multicore", program="mix4",
        max_instructions=DEFAULT_MAX_INSTRUCTIONS,
    ) == "captured"
    for semid in store.semids():
        store.promote(semid, note="golden corpus")
    return store


def test_firewall_verifies_golden_runs(golden_store, core_runs,
                                       multicore_run):
    firewall = BaselineFirewall(golden_store, mode="verify")
    for config, program, result in core_runs.values():
        assert firewall.observe_point(
            config, program, DEFAULT_MAX_INSTRUCTIONS, result
        ) == "verified"
    multicore, result = multicore_run
    assert firewall.observe_multicore(
        multicore, result, machine="multicore", program="mix4",
        max_instructions=DEFAULT_MAX_INSTRUCTIONS,
    ) == "verified"
    assert firewall.stats.divergent == 0
    assert firewall.stats.verified == len(core_runs) + 1


def test_firewall_records_match_golden_json(golden_store, core_runs):
    """The governed records and the legacy JSON pin the same numbers:
    the two regression nets cannot drift apart silently."""
    for key, (config, program, _) in core_runs.items():
        record = golden_store.get(
            result_key(config, program, DEFAULT_MAX_INSTRUCTIONS))
        assert record.behavior["cycles"] == GOLDEN["cores"][key]["cycles"]
        assert (record.behavior["instructions"]
                == GOLDEN["cores"][key]["instructions"])
        assert record.status == "approved"


def test_firewall_multicore_record_matches_golden(golden_store,
                                                  multicore_run):
    multicore, _ = multicore_run
    record = golden_store.get(
        multicore_key(multicore, DEFAULT_MAX_INSTRUCTIONS))
    golden = GOLDEN["multicore"]
    assert record.behavior["makespan"] == golden["makespan"]
    assert record.behavior["aggregate_ipc"] == golden["aggregate_ipc"]
    assert [
        (core["core"], core["cycles"], core["instructions"])
        for core in record.behavior["per_core"]
    ] == [
        (core["name"], core["cycles"], core["instructions"])
        for core in golden["per_core"]
    ]


def test_firewall_catches_doctored_golden(tmp_path, core_runs):
    """A doctored cycle count in an approved record turns strict
    verification red."""
    config, program, result = next(iter(core_runs.values()))
    store = BaselineStore(tmp_path / "baselines")
    capture = BaselineFirewall(store, mode="capture")
    semid = result_key(config, program, DEFAULT_MAX_INSTRUCTIONS)
    capture.observe_point(config, program, DEFAULT_MAX_INSTRUCTIONS,
                          result)
    store.promote(semid)

    record = store.get(semid)
    record.behavior["cycles"] += 1
    record.log("doctor", "seeded mutation")
    store.save(record)

    verify = BaselineFirewall(store, mode="verify")
    with pytest.raises(BaselineDivergenceError) as exc_info:
        verify.observe_point(config, program, DEFAULT_MAX_INSTRUCTIONS,
                             result)
    assert "cycles" in exc_info.value.divergence.fields
    assert "promote" in str(exc_info.value)
