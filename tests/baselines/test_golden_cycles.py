"""Cycle-count bit-identity against pre-optimization golden results.

``golden_cycles.json`` pins the exact cycles, retired instruction
counts, architectural register state (order-weighted checksum) and —
for the SST family — the per-mode cycle breakdown and episode count of
every core model on three tiny workloads, captured at the commit
*before* the event-driven fast-forwarding / memory fast-path rework
landed.  The optimizations are pure simulator-speed work: any drift in
these numbers is a timing-model regression, not tuning.

A multicore golden pins the quantum-interleaved scheduler the same way
(the quantum-skip fast-forward must not move a single access).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cmp.multicore import Multicore
from repro.config import (
    HierarchyConfig,
    SSTConfig,
    ea_machine,
    inorder_machine,
    ooo_machine,
    scout_machine,
    sst_machine,
)
from repro.sim.machine import Machine
from repro.workloads import full_suite

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_cycles.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

MACHINES = {
    "inorder": inorder_machine,
    "ooo": ooo_machine,
    "sst": sst_machine,
    "ea": ea_machine,
    "scout": scout_machine,
}

MULTICORE_PROGRAMS = ("oltp-chase", "int-branchy", "compute-matmul",
                      "fp-stream")


@pytest.fixture(scope="module")
def tiny_suite():
    return {program.name: program for program in full_suite("tiny")}


def _reg_crc(result) -> int:
    """Order-weighted checksum of the final architectural registers."""
    return sum(value * (index + 1)
               for index, value in enumerate(result.state.regs)
               ) & 0xFFFFFFFFFFFFFFFF


def _observed(result) -> dict:
    entry = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "reg_crc": _reg_crc(result),
    }
    sst_stats = result.extra.get("sst")
    if sst_stats is not None:
        entry["mode_cycles"] = dict(sst_stats.mode_cycles)
        entry["episodes"] = sst_stats.episodes
    return entry


@pytest.mark.parametrize("key", sorted(GOLDEN["cores"]))
def test_core_golden(key, tiny_suite):
    machine_name, workload = key.split("/")
    result = Machine(MACHINES[machine_name]()).run(tiny_suite[workload])
    assert _observed(result) == GOLDEN["cores"][key]


def test_multicore_golden(tiny_suite):
    result = Multicore(
        HierarchyConfig(), [SSTConfig()] * len(MULTICORE_PROGRAMS),
        [tiny_suite[name] for name in MULTICORE_PROGRAMS],
    ).run()
    observed = {
        "makespan": result.makespan,
        "aggregate_ipc": round(result.aggregate_ipc, 12),
        "per_core": [
            {"name": core.core_name, "cycles": core.cycles,
             "instructions": core.instructions}
            for core in result.per_core
        ],
    }
    assert observed == GOLDEN["multicore"]
