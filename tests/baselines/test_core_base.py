from repro.baselines.core_base import Core, CoreResult
from repro.isa.instruction import Instruction
from repro.isa.interpreter import ArchState
from repro.isa.opcodes import Op
from repro.isa.registers import RA_REG

import pytest


def result(cycles, instructions, name="core", program="p"):
    return CoreResult(core_name=name, program_name=program, cycles=cycles,
                      instructions=instructions, state=ArchState.fresh())


def test_ipc_cpi():
    r = result(cycles=100, instructions=50)
    assert r.ipc == 0.5
    assert r.cpi == 2.0


def test_zero_cycles_guarded():
    r = result(cycles=0, instructions=0)
    assert r.ipc == 0.0
    assert r.cpi == 0.0


def test_speedup_over():
    fast = result(cycles=100, instructions=50)
    slow = result(cycles=200, instructions=50)
    assert fast.speedup_over(slow) == 2.0


def test_speedup_requires_same_program():
    a = result(100, 50, program="x")
    b = result(100, 50, program="y")
    with pytest.raises(ValueError, match="different programs"):
        a.speedup_over(b)


def test_call_return_conventions():
    call = Instruction(Op.JAL, rd=RA_REG, target=5)
    assert Core.is_call(call)
    tail = Instruction(Op.JAL, rd=0, target=5)
    assert not Core.is_call(tail)
    ret = Instruction(Op.JALR, rd=0, rs1=RA_REG, imm=0)
    assert Core.is_return(ret)
    indirect = Instruction(Op.JALR, rd=0, rs1=5, imm=0)
    assert not Core.is_return(indirect)
    call_indirect = Instruction(Op.JALR, rd=RA_REG, rs1=5, imm=0)
    assert Core.is_call(call_indirect)
    assert not Core.is_return(call_indirect)
