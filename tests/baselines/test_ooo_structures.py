"""OoO structural primitives: bandwidth, issue ports, occupancy windows."""

import pytest

from repro.baselines.ooo.structures import (
    BandwidthAllocator,
    IssuePortAllocator,
    OccupancyWindow,
)


def test_bandwidth_allocator_packs_cycles():
    alloc = BandwidthAllocator(2)
    assert [alloc.claim(0) for _ in range(4)] == [0, 0, 1, 1]


def test_bandwidth_allocator_respects_earliest():
    alloc = BandwidthAllocator(2)
    alloc.claim(0)
    assert alloc.claim(10) == 10
    assert alloc.peek(5) == 10


def test_bandwidth_allocator_validates():
    with pytest.raises(ValueError):
        BandwidthAllocator(0)


def test_issue_port_allows_earlier_claims_after_late_ones():
    """The out-of-order property the monotonic allocator lacks."""
    alloc = IssuePortAllocator(1)
    assert alloc.claim(300) == 300  # an old dependent issues late
    assert alloc.claim(5) == 5  # a younger independent one still at 5


def test_issue_port_bandwidth_per_cycle():
    alloc = IssuePortAllocator(2)
    assert [alloc.claim(7) for _ in range(5)] == [7, 7, 8, 8, 9]


def test_occupancy_window_blocks_when_full():
    window = OccupancyWindow(2)
    assert window.allocate(0) == 0
    window.retire(100)
    assert window.allocate(1) == 1
    window.retire(200)
    # Third allocation must wait for the first release (cycle 100).
    assert window.allocate(2) == 100
    assert window.full_stalls == 1
    assert window.stall_cycles == 98


def test_occupancy_window_free_when_oldest_released():
    window = OccupancyWindow(1)
    window.allocate(0)
    window.retire(10)
    assert window.allocate(50) == 50  # oldest already released by 50


def test_occupancy_window_validates():
    with pytest.raises(ValueError):
        OccupancyWindow(0)


def test_occupancy_stats_dict():
    window = OccupancyWindow(1, "rob")
    stats = window.occupancy_stats()
    assert stats == {"full_stalls": 0, "stall_cycles": 0}
