"""In-order core timing and architectural correctness."""

import pytest

from repro.baselines.inorder import InOrderCore
from repro.config import InOrderConfig
from repro.errors import ExecutionError
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from tests.conftest import small_hierarchy_config


def run(source_or_program, width=2, latency=200, config=None):
    program = (assemble(source_or_program)
               if isinstance(source_or_program, str) else source_or_program)
    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=latency))
    core = InOrderCore(program, hierarchy,
                       config or InOrderConfig(width=width))
    result = core.run()
    verify_against_golden(result, program)
    return result


def test_architectural_correctness(countdown_program):
    result = run(countdown_program)
    assert result.state.regs[2] == sum(range(1, 11))


def test_width_bounds_throughput():
    # 40 independent ALU ops: 1-wide takes ~40 cycles, 4-wide ~10.
    source = "\n".join(f"movi r{1 + i % 8}, {i}" for i in range(40)) + "\nhalt"
    narrow = run(source, width=1)
    wide = run(source, width=4)
    assert narrow.cycles >= 40
    assert wide.cycles <= narrow.cycles / 2


def test_stall_on_use_pays_full_miss():
    result = run("""
        movi r1, 0x100000
        ld   r2, 0(r1)
        addi r3, r2, 1
        halt
    """, latency=200)
    assert result.cycles > 200


def test_miss_without_use_overlaps_nothing_blocking():
    blocking = run("""
        movi r1, 0x100000
        ld   r2, 0(r1)
        addi r3, r2, 1
        halt
    """, latency=200)
    nonblocking = run("""
        movi r1, 0x100000
        ld   r2, 0(r1)
        movi r3, 1
        halt
    """, latency=200)
    # HALT still drains the load, but the dependent-use version cannot
    # be faster than the independent one.
    assert nonblocking.cycles <= blocking.cycles


def test_dependent_misses_serialise(miss_chain_program):
    result = run(miss_chain_program, latency=200)
    assert result.cycles > 3 * 200
    assert result.state.regs[5] == 8


def test_stores_do_not_stall():
    stores = "movi r1, 0x100000\n" + "\n".join(
        f"st r1, {8 * i}(r1)" for i in range(10)
    ) + "\nmovi r2, 1\nhalt"
    result = run(stores, latency=200)
    # 10 store misses, none blocking: far less than 10 * 200.
    assert result.cycles < 500


def test_membar_waits_for_stores():
    fenced = run("""
        movi r1, 0x100000
        st   r1, 0(r1)
        membar
        movi r2, 1
        halt
    """, latency=200)
    assert fenced.cycles > 200


def test_branch_mispredicts_cost_cycles():
    # Data-dependent alternating branch (period 2 is learnable by
    # gshare, so use an LCG-driven unpredictable one instead).
    source = """
        movi r1, 200
        movi r3, 12345
        movi r4, 6364136223846793005
        movi r5, 1442695040888963407
        movi r6, 0
    loop:
        mul  r3, r3, r4
        add  r3, r3, r5
        srli r7, r3, 33
        andi r7, r7, 1
        beq  r7, r0, skip
        addi r6, r6, 1
    skip:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    from repro.config import BranchPredictorConfig

    cheap = run(source, config=InOrderConfig(
        predictor=BranchPredictorConfig(mispredict_penalty=0)))
    costly = run(source, config=InOrderConfig(
        predictor=BranchPredictorConfig(mispredict_penalty=20)))
    assert costly.cycles > cheap.cycles + 500


def test_calls_returns_predicted_by_ras():
    source = """
        movi r1, 50
        movi r2, 0
    loop:
        jal  ra, callee
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    callee:
        addi r2, r2, 1
        jalr r0, ra, 0
    """
    result = run(source)
    branch_stats = result.extra["branch"]
    assert branch_stats.ras_hits >= 49
    assert result.state.regs[2] == 50


def test_runaway_budget_enforced(countdown_program):
    hierarchy = MemoryHierarchy(small_hierarchy_config())
    program = assemble("loop: jal r0, loop\nhalt")
    core = InOrderCore(program, hierarchy)
    with pytest.raises(ExecutionError, match="without HALT"):
        core.run(max_instructions=100)


def test_ipc_reported(countdown_program):
    result = run(countdown_program)
    assert 0 < result.ipc <= 2.0
    assert result.instructions == 2 + 3 * 10 + 1
