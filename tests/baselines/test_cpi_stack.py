"""CPI-stack stall attribution of the in-order core."""

from repro.baselines.inorder import InOrderCore
from repro.config import InOrderConfig
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from tests.conftest import small_hierarchy_config


def run(source: str):
    program = assemble(source)
    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=200))
    return InOrderCore(program, hierarchy, InOrderConfig()).run()


def test_stack_sums_to_total_cycles():
    result = run("""
        movi r1, 0x100000
        ld   r2, 0(r1)
        addi r3, r2, 1
        halt
    """)
    stack = result.extra["cpi_stack"]
    assert sum(stack.values()) == result.cycles


def test_memory_bound_attributed_to_memory():
    result = run("""
        movi r1, 0x100000
        ld   r2, 0(r1)
        addi r3, r2, 1
        halt
    """)
    stack = result.extra["cpi_stack"]
    assert stack["memory"] > 150
    assert stack["memory"] > 10 * stack["compute"]


def test_long_op_attributed():
    result = run("""
        movi r1, 1000
        movi r2, 7
        div  r3, r1, r2
        addi r4, r3, 1
        halt
    """)
    stack = result.extra["cpi_stack"]
    assert stack["long_op"] > 10
    assert stack["memory"] == 0


def test_branch_stalls_attributed():
    result = run("""
        movi r1, 200
        movi r3, 12345
        movi r4, 6364136223846793005
        movi r5, 1442695040888963407
    loop:
        mul  r3, r3, r4
        add  r3, r3, r5
        srli r7, r3, 33
        andi r7, r7, 1
        beq  r7, r0, skip
        addi r6, r6, 1
    skip:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    stack = result.extra["cpi_stack"]
    assert stack["branch"] > 100  # ~half the data branches mispredict


def test_drain_attributed_for_membar():
    result = run("""
        movi r1, 0x100000
        st   r1, 0(r1)
        membar
        movi r2, 1
        halt
    """)
    assert result.extra["cpi_stack"]["drain"] > 100


def test_independent_compute_is_mostly_busy():
    body = "\n".join(f"addi r{1 + i % 8}, r{1 + i % 8}, 1"
                     for i in range(200))
    result = run(f"{body}\nhalt")
    stack = result.extra["cpi_stack"]
    assert stack["busy"] > 0.8 * result.cycles


def test_serial_chain_is_compute_stall():
    """A serial dependence chain is RAW-stall time, not busy time."""
    body = "\n".join("addi r1, r1, 1" for _ in range(100))
    result = run(f"movi r1, 0\n{body}\nhalt")
    stack = result.extra["cpi_stack"]
    assert stack["compute"] > 0.8 * result.cycles
