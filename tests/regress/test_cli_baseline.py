"""The ``repro baseline`` CLI: corpus capture/verify exit codes, the
promote-only green path, diff/list output, the CI diff-report
artifact, and the baseline sections of ``repro cache stats|fsck``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.regress.store import BaselineStore

CORPUS = ["e1"]  # one real experiment keeps the CLI tests fast


@pytest.fixture
def dirs(tmp_path, monkeypatch):
    baseline_dir = tmp_path / "baselines"
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_BASELINE", raising=False)
    monkeypatch.delenv("REPRO_BASELINE_DIR", raising=False)
    return baseline_dir, cache_dir


def corpus(cmd, baseline_dir, *extra):
    return main(["baseline", cmd, *CORPUS, "--smoke",
                 "--baseline-dir", str(baseline_dir), *extra])


def test_verify_red_on_empty_store(dirs, capsys):
    baseline_dir, _ = dirs
    assert corpus("verify", baseline_dir) == 1
    assert "no stored baseline" in capsys.readouterr().err


def test_capture_then_verify_green(dirs, capsys):
    baseline_dir, _ = dirs
    assert corpus("capture", baseline_dir) == 0
    out = capsys.readouterr().out
    assert "captured=" in out
    store = BaselineStore(baseline_dir)
    assert len(store) > 0
    assert all(record.status == "candidate"
               for record in store.records())
    # candidates verify too: capture alone must not leave CI red
    assert corpus("verify", baseline_dir) == 0


def test_doctored_record_red_until_promoted(dirs, capsys):
    baseline_dir, _ = dirs
    assert corpus("capture", baseline_dir) == 0
    assert main(["baseline", "promote", "--all",
                 "--baseline-dir", str(baseline_dir)]) == 0
    store = BaselineStore(baseline_dir)
    assert all(record.status == "approved"
               for record in store.records())
    assert corpus("verify", baseline_dir) == 0

    # doctor one approved cycle count on disk
    record = next(record for record in store.records()
                  if record.kind == "point")
    record.behavior["cycles"] += 1
    record.log("doctor", "seeded mutation")
    store.save(record)
    capsys.readouterr()

    assert corpus("verify", baseline_dir) == 1
    captured = capsys.readouterr()
    assert "DIVERGED" in captured.out
    assert "promote" in captured.err

    # the only green path: capture (parks the candidate) + promote
    assert corpus("capture", baseline_dir) == 0
    assert main(["baseline", "diff",
                 "--baseline-dir", str(baseline_dir)]) == 1
    assert "pending change" in capsys.readouterr().out
    assert main(["baseline", "promote", "--all",
                 "--baseline-dir", str(baseline_dir)]) == 0
    assert corpus("verify", baseline_dir) == 0
    assert main(["baseline", "diff",
                 "--baseline-dir", str(baseline_dir)]) == 0


def test_verify_writes_diff_report_artifact(dirs, tmp_path):
    baseline_dir, _ = dirs
    corpus("capture", baseline_dir)
    report_path = tmp_path / "artifacts" / "baseline-report.json"
    assert corpus("verify", baseline_dir,
                  "--report", str(report_path)) == 0
    report = json.loads(report_path.read_text())
    assert report["mode"] == "verify"
    assert report["stats"]["divergent"] == 0
    assert report["stats"]["verified"] > 0
    assert report["divergences"] == []


def test_list_and_retire(dirs, capsys):
    baseline_dir, _ = dirs
    corpus("capture", baseline_dir)
    store = BaselineStore(baseline_dir)
    assert main(["baseline", "list",
                 "--baseline-dir", str(baseline_dir)]) == 0
    out = capsys.readouterr().out
    assert "candidate" in out
    assert f"{len(store)} record(s)" in out

    semid = store.semids()[0]
    assert main(["baseline", "retire", semid[:12],
                 "--baseline-dir", str(baseline_dir),
                 "--note", "gone"]) == 0
    assert store.get(semid).status == "retired"
    assert main(["baseline", "list", "--status", "retired",
                 "--baseline-dir", str(baseline_dir)]) == 0
    assert "retired" in capsys.readouterr().out


def test_promote_unknown_prefix_fails(dirs, capsys):
    baseline_dir, _ = dirs
    corpus("capture", baseline_dir)
    assert main(["baseline", "promote", "ffff" * 16,
                 "--baseline-dir", str(baseline_dir)]) == 2
    assert "no baseline record matches" in capsys.readouterr().err


def test_cache_stats_reports_baselines(dirs, monkeypatch, capsys):
    baseline_dir, cache_dir = dirs
    monkeypatch.setenv("REPRO_BASELINE_DIR", str(baseline_dir))
    corpus("capture", baseline_dir)
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "baselines:" in out
    assert "candidate=" in out


def test_cache_fsck_cross_checks_baselines(dirs, monkeypatch, capsys):
    baseline_dir, cache_dir = dirs
    monkeypatch.setenv("REPRO_BASELINE_DIR", str(baseline_dir))
    corpus("capture", baseline_dir)
    capsys.readouterr()
    assert main(["cache", "fsck", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "baseline records scanned" in out
    assert "vs cache" in out
    assert "0 MISMATCHED" in out

    # corrupt one point baseline: cross-check must go red
    store = BaselineStore(baseline_dir)
    record = next(record for record in store.records()
                  if record.kind == "point")
    record.behavior["cycles"] += 1
    record.log("doctor")
    store.save(record)
    assert main(["cache", "fsck", "--cache-dir", str(cache_dir)]) == 1
    assert "1 MISMATCHED" in capsys.readouterr().out
