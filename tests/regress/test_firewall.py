"""The baseline firewall engine: observation kinds, capture/verify
modes, strictness, reporting, the simulate()/BenchEnv/engine hook
points, and bit-identity of behavior across execution variants
(block-dispatch off, taint tracking on, ensemble numpy-vs-python)."""

from __future__ import annotations

import pytest

from repro.baselines.core_base import DEFAULT_MAX_INSTRUCTIONS
from repro.config import sst_machine
from repro.experiments.bench_env import BenchEnv
from repro.experiments.engine import ExperimentEngine
from repro.isa import blockcache
from repro.regress.firewall import (
    MODE_CAPTURE,
    MODE_OFF,
    MODE_VERIFY,
    BaselineDivergenceError,
    BaselineFirewall,
    firewall_from_env,
    mode_from_env,
    point_behavior,
)
from repro.regress.store import BaselineStore
from repro.sim.cache import result_key
from repro.sim.ensemble import BACKEND_PYTHON, numpy_available
from repro.sim.runner import simulate
from repro.workloads import full_suite
from repro.workloads.suite import WORKLOAD_FACTORIES, suite_params


@pytest.fixture
def store(tmp_path):
    return BaselineStore(tmp_path / "baselines")


@pytest.fixture(scope="module")
def tiny_suite():
    return {program.name: program for program in full_suite("tiny")}


def run_point(program, **kwargs):
    return simulate(sst_machine(), program, **kwargs)


# -- environment gate -------------------------------------------------------


def test_mode_from_env(monkeypatch):
    for value, expected in (("", MODE_OFF), ("0", MODE_OFF),
                            ("off", MODE_OFF), ("capture", MODE_CAPTURE),
                            ("verify", MODE_VERIFY), ("1", MODE_VERIFY),
                            ("on", MODE_VERIFY)):
        monkeypatch.setenv("REPRO_BASELINE", value)
        assert mode_from_env() == expected
    monkeypatch.setenv("REPRO_BASELINE", "bogus")
    with pytest.raises(Exception):
        mode_from_env()


def test_firewall_from_env_off_is_none(monkeypatch):
    monkeypatch.delenv("REPRO_BASELINE", raising=False)
    assert firewall_from_env() is None


# -- the simulate() hook ----------------------------------------------------


def test_simulate_hook_captures_and_verifies(monkeypatch, tmp_path,
                                             tiny_suite):
    program = tiny_suite["oltp-chase"]
    monkeypatch.setenv("REPRO_BASELINE_DIR", str(tmp_path / "bl"))
    monkeypatch.setenv("REPRO_BASELINE", "capture")
    run_point(program)
    store = BaselineStore(tmp_path / "bl")
    assert len(store) == 1
    [record] = store.records()
    assert record.kind == "point"
    assert record.status == "candidate"
    assert record.semid == result_key(sst_machine(), program,
                                      DEFAULT_MAX_INSTRUCTIONS)

    monkeypatch.setenv("REPRO_BASELINE", "verify")
    run_point(program)  # green: candidate matches

    record.behavior["instructions"] -= 1
    record.log("doctor", "seeded mutation")
    store.save(record)
    with pytest.raises(BaselineDivergenceError):
        run_point(program)


def test_simulate_hook_off_touches_nothing(monkeypatch, tmp_path,
                                           tiny_suite):
    monkeypatch.setenv("REPRO_BASELINE_DIR", str(tmp_path / "bl"))
    monkeypatch.delenv("REPRO_BASELINE", raising=False)
    run_point(tiny_suite["oltp-chase"])
    assert not (tmp_path / "bl").exists()


# -- verify semantics -------------------------------------------------------


def test_verify_unseen_is_ignored(store, tiny_suite):
    firewall = BaselineFirewall(store, mode="verify")
    result = run_point(tiny_suite["oltp-chase"])
    assert firewall.observe_point(
        sst_machine(), tiny_suite["oltp-chase"],
        DEFAULT_MAX_INSTRUCTIONS, result) == "unseen"
    assert firewall.stats.unseen == 1
    assert not firewall.divergences


def test_verify_skips_retired(store, tiny_suite):
    program = tiny_suite["oltp-chase"]
    result = run_point(program)
    capture = BaselineFirewall(store, mode="capture")
    capture.observe_point(sst_machine(), program,
                          DEFAULT_MAX_INSTRUCTIONS, result)
    semid = result_key(sst_machine(), program, DEFAULT_MAX_INSTRUCTIONS)
    store.retire(semid)
    verify = BaselineFirewall(store, mode="verify")
    assert verify.observe_point(
        sst_machine(), program, DEFAULT_MAX_INSTRUCTIONS, result
    ) == "retired"


def test_nonstrict_verify_collects_instead_of_raising(store, tiny_suite):
    program = tiny_suite["oltp-chase"]
    result = run_point(program)
    capture = BaselineFirewall(store, mode="capture")
    capture.observe_point(sst_machine(), program,
                          DEFAULT_MAX_INSTRUCTIONS, result)
    semid = result_key(sst_machine(), program, DEFAULT_MAX_INSTRUCTIONS)
    record = store.get(semid)
    record.behavior["cycles"] += 5
    record.log("doctor")
    store.save(record)

    firewall = BaselineFirewall(store, mode="verify", strict=False)
    assert firewall.observe_point(
        sst_machine(), program, DEFAULT_MAX_INSTRUCTIONS, result
    ) == "divergent"
    report = firewall.report()
    assert report["stats"]["divergent"] == 1
    [divergence] = report["divergences"]
    assert divergence["semid"] == semid
    assert "cycles" in divergence["fields"]


# -- bit-identity across execution variants ---------------------------------


def test_behavior_identical_with_block_dispatch_off(store, monkeypatch,
                                                    tiny_suite):
    """The decode-once dispatch engine is a pure simulator-speed
    optimization: behavior captured with it on verifies with it off."""
    program = tiny_suite["oltp-chase"]
    monkeypatch.setenv(blockcache.ENV_FLAG, "1")
    captured = run_point(program)
    capture = BaselineFirewall(store, mode="capture")
    capture.observe_point(sst_machine(), program,
                          DEFAULT_MAX_INSTRUCTIONS, captured)

    monkeypatch.setenv(blockcache.ENV_FLAG, "0")
    plain = run_point(program)
    verify = BaselineFirewall(store, mode="verify")
    assert verify.observe_point(
        sst_machine(), program, DEFAULT_MAX_INSTRUCTIONS, plain
    ) == "verified"


def test_behavior_identical_with_taint_tracking_on(store, monkeypatch,
                                                   tiny_suite):
    """Taint tracking is observational: its extra payload never enters
    the behavior record, and it perturbs no governed field."""
    program = tiny_suite["oltp-chase"]
    monkeypatch.delenv("REPRO_TAINT", raising=False)
    baseline = run_point(program)
    capture = BaselineFirewall(store, mode="capture")
    capture.observe_point(sst_machine(), program,
                          DEFAULT_MAX_INSTRUCTIONS, baseline)

    monkeypatch.setenv("REPRO_TAINT", "1")
    tainted = run_point(program)
    verify = BaselineFirewall(store, mode="verify")
    assert verify.observe_point(
        sst_machine(), program, DEFAULT_MAX_INSTRUCTIONS, tainted
    ) == "verified"


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_ensemble_behavior_identical_numpy_vs_python(tmp_path):
    """Both ensemble backends produce the same governed behavior for
    the same lanes: capture under python, verify under numpy."""
    kwargs = suite_params("tiny")["int-branchy"]
    programs = [
        WORKLOAD_FACTORIES["int-branchy"](**kwargs, seed=100 + lane,
                                          name=f"int-branchy@lane{lane}")
        for lane in range(4)
    ]
    store = BaselineStore(tmp_path / "bl")
    capture = BaselineFirewall(store, mode="capture")
    env = BenchEnv(smoke=True, cache=None, firewall=capture)
    env.run_ensemble(programs, backend=BACKEND_PYTHON)
    assert capture.stats.captured == len(programs)

    verify = BaselineFirewall(store, mode="verify")
    env = BenchEnv(smoke=True, cache=None, firewall=verify)
    env.run_ensemble(programs, backend="numpy")
    assert verify.stats.verified == len(programs)
    assert verify.stats.divergent == 0


# -- BenchEnv / engine integration ------------------------------------------


def test_bench_env_observes_points_including_cache_hits(tmp_path,
                                                        tiny_suite):
    program = tiny_suite["oltp-chase"]
    from repro.sim.cache import ResultCache

    cache = ResultCache(tmp_path / "cache")
    store = BaselineStore(tmp_path / "bl")

    capture = BaselineFirewall(store, mode="capture")
    env = BenchEnv(smoke=True, cache=cache, firewall=capture)
    env.run(sst_machine(), program)
    assert capture.stats.captured == 1

    # second environment: the point restores from cache, and the
    # firewall still sees (and verifies) it
    verify = BaselineFirewall(store, mode="verify")
    env = BenchEnv(smoke=True, cache=cache, firewall=verify)
    env.run(sst_machine(), program)
    assert verify.stats.verified == 1


def test_engine_observes_experiment_document(tmp_path):
    store = BaselineStore(tmp_path / "bl")
    capture = BaselineFirewall(store, mode="capture")
    engine = ExperimentEngine(smoke=True, cache=None, write=False,
                              firewall=capture)
    engine.run("e1")
    kinds = {record.kind for record in store.records()}
    assert "experiment" in kinds
    assert "point" in kinds
    [experiment] = [record for record in store.records()
                    if record.kind == "experiment"]
    assert experiment.scenario["experiment"] == "e1_speedup_over_inorder"
    behavior = experiment.behavior
    assert set(behavior) >= {"points_signature", "n_points",
                             "expectations", "ok", "metrics_signature",
                             "table_signature"}

    # re-run: everything verifies, including the experiment document
    verify = BaselineFirewall(store, mode="verify")
    engine = ExperimentEngine(smoke=True, cache=None, write=False,
                              firewall=verify)
    engine.run("e1")
    assert verify.stats.divergent == 0
    assert verify.stats.verified == len(store)


def test_experiment_points_signature_pins_cache_keys(tmp_path):
    """An unintended cache-key change turns experiment verification
    red even when every cycle count matches."""
    store = BaselineStore(tmp_path / "bl")
    capture = BaselineFirewall(store, mode="capture")
    ExperimentEngine(smoke=True, cache=None, write=False,
                     firewall=capture).run("e1")
    [experiment] = [record for record in store.records()
                    if record.kind == "experiment"]
    # simulate a silent re-keying: the stored signature no longer
    # matches what a fresh run computes
    experiment.behavior["points_signature"] = "0" * 64
    experiment.log("doctor", "simulated cache-key drift")
    store.save(experiment)

    verify = BaselineFirewall(store, mode="verify", strict=False)
    ExperimentEngine(smoke=True, cache=None, write=False,
                     firewall=verify).run("e1")
    assert verify.stats.divergent == 1
    [divergence] = verify.divergences
    assert divergence.kind == "experiment"
    assert "points_signature" in divergence.fields


# -- behavior surface -------------------------------------------------------


def test_point_behavior_excludes_wall_clock(tiny_suite):
    result = run_point(tiny_suite["oltp-chase"])
    behavior = point_behavior(result)
    assert set(behavior) == {"cycles", "instructions", "state_hash",
                             "perf_signature", "sst_signature"}
    assert "wall" not in str(sorted(behavior))
