"""The canonical semantic-ID scheme: stability, ordering, and
bit-compatibility with the historical key formats.

Every identity-bearing digest in the repo routes through
:mod:`repro.regress.semid`; these tests pin the scheme itself (a
change here silently re-keys the result cache and every committed
baseline, so drift must be loud).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json

import pytest

from repro.config import inorder_machine, sst_machine
from repro.regress.semid import (
    SemanticIdError,
    canonical_json,
    canonicalize,
    deterministic_fraction,
    digest_material,
    dump_stable,
    line_digest,
    semantic_id,
    short_id,
)
from repro.sim.cache import SIM_SCHEMA_VERSION, result_key
from repro.workloads import full_suite


# -- canonicalization rules -------------------------------------------------


def test_primitives_are_type_prefixed():
    assert canonicalize(None) == "none"
    assert canonicalize(True) == "bool:True"
    assert canonicalize(4) == "int:4"
    assert canonicalize(4.0) == "float:4.0"
    assert canonicalize("4") == "str:4"


def test_cross_type_collisions_impossible():
    values = [4, 4.0, "4", True, None]
    rendered = {canonical_json(value) for value in values}
    assert len(rendered) == len(values)


def test_bool_not_swallowed_by_int():
    # bool subclasses int; 1 and True must not share an id.
    assert semantic_id(1) != semantic_id(True)


def test_dict_key_order_never_perturbs_digest():
    assert semantic_id({"a": 1, "b": 2}) == semantic_id({"b": 2, "a": 1})


def test_nested_ordering_stability():
    left = {"outer": {"x": [1, {"p": 1, "q": 2}], "y": 3}}
    right = {"outer": {"y": 3, "x": [1, {"q": 2, "p": 1}]}}
    assert semantic_id(left) == semantic_id(right)


def test_list_order_is_significant():
    assert semantic_id([1, 2]) != semantic_id([2, 1])


def test_enum_carries_class_and_value():
    class Color(enum.Enum):
        RED = "red"

    class Paint(enum.Enum):
        RED = "red"

    assert canonicalize(Color.RED) == "enum:Color:red"
    assert semantic_id(Color.RED) != semantic_id(Paint.RED)


def test_dataclass_canonicalizes_init_fields_with_type_tag():
    @dataclasses.dataclass
    class Point:
        x: int
        y: int
        derived: int = dataclasses.field(default=0, init=False)

    rendered = canonicalize(Point(1, 2))
    assert rendered["__type__"] == "Point"
    assert "derived" not in rendered  # init=False fields are derived
    assert semantic_id(Point(1, 2)) == semantic_id(Point(1, 2))
    assert semantic_id(Point(1, 2)) != semantic_id(Point(2, 1))


def test_machine_configs_have_distinct_stable_ids():
    assert semantic_id(sst_machine()) == semantic_id(sst_machine())
    assert semantic_id(sst_machine()) != semantic_id(inorder_machine())


def test_uncanonicalizable_raises():
    with pytest.raises(SemanticIdError):
        canonicalize(object())
    with pytest.raises(SemanticIdError):
        semantic_id({"ok": object()})


# -- bit-compatibility with the historical formats --------------------------


def test_digest_material_matches_raw_sha256():
    material = {"schema": 2, "config": {"a": "str:x"}, "n": 5}
    expected = hashlib.sha256(
        json.dumps(material, sort_keys=True).encode()
    ).hexdigest()
    assert digest_material(material) == expected


def test_result_key_is_bit_identical_to_legacy_format():
    """The unified scheme changed zero cache keys: result_key still
    hashes the exact legacy material byte-for-byte."""
    program = full_suite("tiny")[0]
    config = sst_machine()
    legacy = hashlib.sha256(json.dumps({
        "schema": SIM_SCHEMA_VERSION,
        "config": canonicalize(config),
        "program": program.fingerprint(),
        "max_instructions": 1000,
    }, sort_keys=True).encode()).hexdigest()
    assert result_key(config, program, 1000) == legacy


def test_program_fingerprint_is_bit_identical_to_legacy_format():
    program = full_suite("tiny")[0]
    hasher = hashlib.sha256()
    hasher.update(f"program:{program.name}\n".encode())
    for inst in program.instructions:
        hasher.update(
            f"i:{inst.op.value}:{inst.rd}:{inst.rs1}:{inst.rs2}:"
            f"{inst.imm}:{inst.target}\n".encode()
        )
    for word in program.data:
        hasher.update(f"d:{word.addr}:{word.value}\n".encode())
    for start, end in program.secret_ranges:
        hasher.update(f"s:{start}:{end}\n".encode())
    assert program.fingerprint() == hasher.hexdigest()


def test_line_digest_terminates_each_record():
    # ["ab"] and ["a", "b"] must not collide.
    assert line_digest(["ab"]) != line_digest(["a", "b"])
    assert line_digest([]) == hashlib.sha256(b"").hexdigest()


def test_deterministic_fraction_range_and_stability():
    values = [deterministic_fraction(f"crash:task-{index}")
              for index in range(50)]
    assert all(0.0 <= value < 1.0 for value in values)
    assert values == [deterministic_fraction(f"crash:task-{index}")
                      for index in range(50)]
    assert len(set(values)) > 40  # well-spread, not degenerate


# -- helpers ----------------------------------------------------------------


def test_short_id_is_a_prefix():
    full = semantic_id("x")
    assert full.startswith(short_id(full))
    assert len(short_id(full)) == 12


def test_dump_stable_sorts_keys_and_ends_with_newline():
    text = dump_stable({"b": 1, "a": 2})
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')
    assert dump_stable({"a": 2, "b": 1}) == text
