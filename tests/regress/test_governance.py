"""Governance lifecycle of baseline records: capture, promote, retire,
the append-only audit history, and the doctored-record detection the
firewall exists for."""

from __future__ import annotations

import json

import pytest

from repro.regress.records import (
    BaselineAuditError,
    BaselineRecord,
    BaselineSchemaError,
    BaselineTransitionError,
    validate_record_doc,
)
from repro.regress.store import BaselineLookupError, BaselineStore


def make_record(semid: str = "a" * 64, cycles: int = 100) -> BaselineRecord:
    return BaselineRecord(
        semid=semid, kind="point",
        scenario={"machine": "sst-2w", "program": "oltp-chase",
                  "max_instructions": 1000},
        behavior={"cycles": cycles, "instructions": 50,
                  "state_hash": "b" * 64, "perf_signature": None,
                  "sst_signature": None},
        sim_schema=2,
    )


@pytest.fixture
def store(tmp_path):
    return BaselineStore(tmp_path / "baselines")


# -- lifecycle round-trips --------------------------------------------------


def test_capture_promote_roundtrip(store):
    assert store.capture(make_record(), note="first") == "captured"
    record = store.get("a" * 64)
    assert record.status == "candidate"
    assert store.promote("a" * 64, note="looks right") == "promoted"
    record = store.get("a" * 64)
    assert record.status == "approved"
    assert [entry["action"] for entry in record.history] == \
        ["capture", "promote"]
    assert record.history[1]["note"] == "looks right"


def test_recapture_parks_candidate_until_promoted(store):
    store.capture(make_record())
    store.promote("a" * 64)
    # behavior changed: the observation parks, the governed behavior
    # stays put
    assert store.capture(make_record(cycles=117)) == "recaptured"
    record = store.get("a" * 64)
    assert record.behavior["cycles"] == 100
    assert record.candidate_behavior["cycles"] == 117
    # the same divergent observation again: still pending, no new entry
    assert store.capture(make_record(cycles=117)) == "pending"
    # promote installs the pending behavior
    assert store.promote("a" * 64) == "promoted-recapture"
    record = store.get("a" * 64)
    assert record.behavior["cycles"] == 117
    assert record.candidate_behavior is None
    assert record.status == "approved"


def test_reconverged_clears_pending_candidate(store):
    store.capture(make_record())
    store.promote("a" * 64)
    store.capture(make_record(cycles=117))
    # the code change was reverted: behavior matches the approved
    # record again, so the pending candidate is dropped
    assert store.capture(make_record(cycles=100)) == "reconverged"
    record = store.get("a" * 64)
    assert record.candidate_behavior is None
    assert record.history[-1]["action"] == "reconverged"


def test_unchanged_capture_leaves_file_untouched(store):
    store.capture(make_record())
    path = store._path("a" * 64)
    before = path.read_text()
    assert store.capture(make_record()) == "unchanged"
    assert path.read_text() == before


def test_retire_roundtrip_and_terminality(store):
    store.capture(make_record())
    store.promote("a" * 64)
    store.retire("a" * 64, note="scenario removed")
    record = store.get("a" * 64)
    assert record.status == "retired"
    # retired is terminal: no promote, no recapture
    with pytest.raises(BaselineTransitionError):
        store.promote("a" * 64)
    assert store.capture(make_record(cycles=999)) == "retired"
    assert store.get("a" * 64).behavior["cycles"] == 100


# -- illegal transitions ----------------------------------------------------


def test_promote_approved_with_nothing_pending_rejected(store):
    store.capture(make_record())
    store.promote("a" * 64)
    with pytest.raises(BaselineTransitionError):
        store.promote("a" * 64)


def test_retire_retired_rejected():
    record = make_record()
    record.retire()
    with pytest.raises(BaselineTransitionError):
        record.retire()


# -- append-only audit ------------------------------------------------------


def test_save_rejects_rewritten_history(store):
    store.capture(make_record())
    store.promote("a" * 64)
    record = store.get("a" * 64)
    record.history[0]["action"] = "never-happened"
    with pytest.raises(BaselineAuditError):
        store.save(record)


def test_save_rejects_dropped_history(store):
    store.capture(make_record())
    store.promote("a" * 64)
    record = store.get("a" * 64)
    record.history = record.history[:1]
    with pytest.raises(BaselineAuditError):
        store.save(record)


def test_history_seq_must_be_dense():
    record = make_record()
    record.log("capture")
    doc = record.to_doc()
    doc["history"][0]["seq"] = 7
    with pytest.raises(BaselineSchemaError):
        validate_record_doc(doc)


# -- doctored records -------------------------------------------------------


def test_doctored_cycle_count_is_caught(store):
    """The seeded-mutation drill: doctor an approved record's cycle
    count on disk and confirm a matching observation now diverges."""
    store.capture(make_record())
    store.promote("a" * 64)
    record = store.get("a" * 64)
    record.behavior["cycles"] = 99999
    record.log("doctor", "seeded mutation")
    store.save(record)

    observed = make_record().behavior
    diff = store.get("a" * 64).diff_behavior(observed)
    assert diff == {"cycles": (99999, 100)}


def test_renamed_record_file_is_rejected(store):
    store.capture(make_record())
    path = store._path("a" * 64)
    payload = path.read_text()
    (store.root / ("c" * 64 + ".json")).write_text(payload)
    with pytest.raises(BaselineSchemaError):
        store.load("c" * 64)
    report = store.fsck()
    assert report.semid_mismatch == 1
    assert report.ok == 1


def test_fsck_flags_invalid_json_without_removing(store):
    store.capture(make_record())
    bad = store.root / ("d" * 64 + ".json")
    bad.write_text("{ not json")
    report = store.fsck()
    assert report.invalid == 1
    assert report.ok == 1
    assert bad.exists()  # governed state is never auto-removed


# -- store addressing -------------------------------------------------------


def test_resolve_prefix_git_style(store):
    store.capture(make_record("a" * 64))
    store.capture(make_record("ab" + "c" * 62))
    assert store.resolve("aa") == "a" * 64
    with pytest.raises(BaselineLookupError):
        store.resolve("a")  # ambiguous
    with pytest.raises(BaselineLookupError):
        store.resolve("ff")  # no match


def test_record_document_roundtrip(store):
    store.capture(make_record())
    path = store._path("a" * 64)
    doc = json.loads(path.read_text())
    validate_record_doc(doc)
    rebuilt = BaselineRecord.from_doc(doc)
    assert rebuilt == store.get("a" * 64)
