"""Hygiene: the env-knob registry stays complete.

Every ``REPRO_*`` environment variable the package reads must be
documented twice — in the registry comment block in
``src/repro/config.py`` and in the README's environment-knob table —
and neither list may advertise a knob the code no longer reads.  The
scan is over string literals, which also catches knobs read through
named constants (``TIMING_ENSEMBLE_ENV = "REPRO_TIMING_ENSEMBLE"``).
"""

from __future__ import annotations

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src" / "repro"
CONFIG_PY = SRC_ROOT / "config.py"
README = REPO_ROOT / "README.md"

_KNOB = re.compile(r"\"(REPRO_[A-Z_]+)\"")
_WORD = re.compile(r"\bREPRO_[A-Z_]+\b")


def knobs_read_by_source() -> set:
    """Every REPRO_* string literal in the package source."""
    found = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        found.update(_KNOB.findall(path.read_text()))
    return found


def registry_block() -> str:
    """The documented knob registry comment in config.py."""
    text = CONFIG_PY.read_text()
    start = text.index("Runtime environment knobs")
    end = text.index("ENSEMBLE_ENV =", start)
    return text[start:end]


def test_source_knobs_are_registered():
    documented = set(_WORD.findall(registry_block()))
    missing = knobs_read_by_source() - documented
    assert not missing, (
        f"env knobs read by src/ but missing from the config.py "
        f"registry comment: {sorted(missing)}"
    )


def test_registry_lists_no_dead_knobs():
    documented = set(_WORD.findall(registry_block()))
    dead = documented - knobs_read_by_source()
    assert not dead, (
        f"config.py registry documents knobs nothing reads: "
        f"{sorted(dead)}"
    )


def test_readme_table_matches_source():
    readme = README.read_text()
    start = readme.index("### Environment knobs")
    end = readme.index("###", start + 1)
    table = set(_WORD.findall(readme[start:end]))
    knobs = knobs_read_by_source()
    missing = knobs - table
    dead = table - knobs
    assert not missing, (
        f"env knobs read by src/ but missing from the README table: "
        f"{sorted(missing)}"
    )
    assert not dead, (
        f"README env table lists knobs nothing reads: {sorted(dead)}"
    )
