"""The shared REPRO_* knob parsers: one home for int/flag semantics so
ad-hoc ``int(os.environ.get(...))`` crashes cannot reappear."""

import pytest

from repro.config import (
    ensemble_lanes,
    env_flag,
    env_int,
    timing_ensemble_enabled,
)
from repro.errors import ConfigError


def test_env_int_unset_and_blank_use_default(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert env_int("REPRO_JOBS", 3) == 3
    monkeypatch.setenv("REPRO_JOBS", "   ")
    assert env_int("REPRO_JOBS", 3) == 3


def test_env_int_parses_and_names_the_knob_on_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "8")
    assert env_int("REPRO_JOBS", 1) == 8
    monkeypatch.setenv("REPRO_JOBS", "-2")
    assert env_int("REPRO_JOBS", 1) == -2
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ConfigError, match="REPRO_JOBS.*'many'"):
        env_int("REPRO_JOBS", 1)


def test_env_flag_kill_switch_semantics(monkeypatch):
    monkeypatch.delenv("REPRO_TIMING_ENSEMBLE", raising=False)
    assert env_flag("REPRO_TIMING_ENSEMBLE", default=True)
    # Kill switches are off only at the literal "0".
    monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", "0")
    assert not env_flag("REPRO_TIMING_ENSEMBLE", default=True)
    assert not timing_ensemble_enabled()
    monkeypatch.setenv("REPRO_TIMING_ENSEMBLE", "no")
    assert env_flag("REPRO_TIMING_ENSEMBLE", default=True)


def test_env_flag_opt_in_semantics(monkeypatch):
    monkeypatch.delenv("REPRO_TAINT", raising=False)
    assert not env_flag("REPRO_TAINT", default=False)
    for value in ("1", "on", "true", " TRUE "):
        monkeypatch.setenv("REPRO_TAINT", value)
        assert env_flag("REPRO_TAINT", default=False), value
    monkeypatch.setenv("REPRO_TAINT", "yes")
    assert not env_flag("REPRO_TAINT", default=False)


def test_ensemble_lanes_validates(monkeypatch):
    monkeypatch.setenv("REPRO_ENSEMBLE_LANES", "16")
    assert ensemble_lanes() == 16
    monkeypatch.setenv("REPRO_ENSEMBLE_LANES", "0")
    with pytest.raises(ConfigError, match="REPRO_ENSEMBLE_LANES"):
        ensemble_lanes()
    monkeypatch.setenv("REPRO_ENSEMBLE_LANES", "wide")
    with pytest.raises(ConfigError, match="REPRO_ENSEMBLE_LANES"):
        ensemble_lanes()
