"""Dynamic taint tracker: gadget fills observed under SST and scout,
containment cases stay silent, static/dynamic cross-check enforced,
and the observationality guarantee (identical cycles with REPRO_TAINT
on)."""

import pytest

from repro.analysis.taint import clear_taint_cache
from repro.analysis.taint_tracker import make_taint_tracker, taint_enabled
from repro.config import scout_machine, sst_machine
from repro.core import SSTCore
from repro.errors import TaintError
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import simulate
from repro.workloads import (
    branchy_reduce,
    spec_leak_gadget,
    spec_leak_safe,
    spec_leak_store,
)
from tests.conftest import small_hierarchy_config


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_taint_cache()
    yield
    clear_taint_cache()


@pytest.fixture
def taint_on(monkeypatch):
    monkeypatch.setenv("REPRO_TAINT", "1")


def _run(machine_factory, program):
    return simulate(machine_factory(small_hierarchy_config()), program,
                    verify=True)


# ----------------------------------------------------------------------
# Enablement.
# ----------------------------------------------------------------------


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_TAINT", raising=False)
    assert not taint_enabled()
    core = SSTCore(spec_leak_gadget(),
                   MemoryHierarchy(small_hierarchy_config()),
                   sst_machine().sst)
    assert core.taint is None
    result = core.run()
    assert "taint" not in result.extra


@pytest.mark.parametrize("value", ["1", "on", "true", "yes"])
def test_truthy_env_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_TAINT", value)
    assert taint_enabled()


def test_factory_attaches_when_enabled(taint_on, monkeypatch):
    core = SSTCore(spec_leak_gadget(),
                   MemoryHierarchy(small_hierarchy_config()),
                   sst_machine().sst)
    assert core.taint is not None
    monkeypatch.delenv("REPRO_TAINT")
    assert make_taint_tracker(core, spec_leak_gadget()) is None


# ----------------------------------------------------------------------
# The seeded gadgets, dynamically.
# ----------------------------------------------------------------------


def test_gadget_observed_on_sst(taint_on):
    result = _run(sst_machine, spec_leak_gadget())
    taint = result.extra["taint"]
    assert taint["transient_tainted_fills"] >= 1
    assert taint["observed_gadget_pcs"] == taint["static_gadget_pcs"]
    assert taint["agreement"]
    # verify=True above already proved architectural containment: the
    # fill happened, yet the final state matches the golden interpreter.


def test_gadget_observed_under_scout(taint_on):
    taint = _run(scout_machine, spec_leak_gadget()).extra["taint"]
    assert taint["transient_tainted_fills"] >= 1
    assert taint["agreement"]
    assert all(record["strand"] == "scout"
               for record in taint["records"])


def test_safe_variant_records_nothing(taint_on):
    for factory in (sst_machine, scout_machine):
        taint = _run(factory, spec_leak_safe()).extra["taint"]
        assert taint["transient_tainted_fills"] == 0
        assert taint["records"] == []
        assert taint["agreement"]


def test_store_gadget_is_static_only_on_sst(taint_on):
    # The ahead strand parks the tainted-address store in the store
    # buffer: no fill, so the static verdict stays unobserved —
    # reported as imprecision, not error.
    taint = _run(sst_machine, spec_leak_store()).extra["taint"]
    assert taint["transient_tainted_fills"] == 0
    assert taint["static_only_pcs"] == taint["static_gadget_pcs"]
    assert taint["agreement"]


def test_store_gadget_leaks_under_scout(taint_on):
    # Scout stores prefetch their line for ownership — the same store
    # IS a fill there.
    taint = _run(scout_machine, spec_leak_store()).extra["taint"]
    assert taint["transient_tainted_fills"] >= 1
    assert taint["agreement"]


# ----------------------------------------------------------------------
# The soundness cross-check.
# ----------------------------------------------------------------------


def test_unexplained_dynamic_observation_raises(taint_on):
    core = SSTCore(spec_leak_gadget(),
                   MemoryHierarchy(small_hierarchy_config()),
                   sst_machine().sst)
    core.run()
    # Fabricate an observation at a pc the static pass never flagged:
    # the finalize cross-check must refuse to explain it away.
    core.taint._records.append(
        {"pc": 0, "addr": 0x10_0000, "seq": 999, "strand": "ahead",
         "cycle": 1}
    )
    with pytest.raises(TaintError) as excinfo:
        core.taint.finalize_report()
    message = str(excinfo.value)
    assert "pcs [0]" in message
    assert "spec-leak-gadget" in message


# ----------------------------------------------------------------------
# Ordinary workloads: agreement and observationality.
# ----------------------------------------------------------------------


def test_suite_workload_agrees_and_records_nothing(taint_on):
    program = branchy_reduce(iterations=128, data_words=1 << 10)
    taint = _run(sst_machine, program).extra["taint"]
    assert not taint["has_secrets"]
    assert taint["records"] == []
    assert taint["agreement"]


@pytest.mark.parametrize("machine", [sst_machine, scout_machine])
def test_tracking_is_cycle_identical(monkeypatch, machine):
    program = spec_leak_gadget()
    monkeypatch.delenv("REPRO_TAINT", raising=False)
    clear_taint_cache()
    off = simulate(machine(small_hierarchy_config()), program, verify=True)
    monkeypatch.setenv("REPRO_TAINT", "1")
    on = simulate(machine(small_hierarchy_config()), program, verify=True)
    assert on.cycles == off.cycles
    assert on.instructions == off.instructions
    assert on.state.regs == off.state.regs


def test_cycle_identical_on_suite_workload(monkeypatch):
    program = branchy_reduce(iterations=128, data_words=1 << 10)
    monkeypatch.delenv("REPRO_TAINT", raising=False)
    off = simulate(sst_machine(small_hierarchy_config()), program)
    monkeypatch.setenv("REPRO_TAINT", "1")
    on = simulate(sst_machine(small_hierarchy_config()), program)
    assert on.cycles == off.cycles
