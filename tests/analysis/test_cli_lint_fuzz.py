"""The ``repro lint`` and ``repro fuzz`` subcommands."""

import json
import pickle

import pytest

from repro.cli import main
from repro.isa.builder import ProgramBuilder
from repro.workloads.fuzz import HAVE_HYPOTHESIS, FuzzFailure, build_program


# ----------------------------------------------------------------------
# repro lint
# ----------------------------------------------------------------------


def test_lint_clean_workload_exits_zero(capsys):
    assert main(["lint", "int-branchy"]) == 0
    assert "int-branchy: clean" in capsys.readouterr().out


def test_lint_flags_the_gadget_workload(capsys):
    assert main(["lint", "spec-leak-gadget"]) == 1
    out = capsys.readouterr().out
    assert "1 finding(s)" in out
    assert "spec_leak_gadget" in out


def test_lint_all_covers_suite_and_analysis_registries(capsys):
    code = main(["lint", "--all", "--json"])
    report = json.loads(capsys.readouterr().out)
    names = {doc["program"] for doc in report["programs"]}
    assert "compute-matmul" in names and "spec-leak-gadget" in names
    # The two seeded gadget variants are the only findings.
    assert report["findings"] == 2
    assert code == 1


def test_lint_json_reports_structured_diagnostics(capsys):
    assert main(["lint", "spec-leak-store", "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    [doc] = report["programs"]
    assert doc["has_secrets"]
    [diag] = doc["diagnostics"]
    assert diag["kind"] == "spec_leak_gadget"
    assert isinstance(diag["pc"], int)


def test_lint_pickled_program(tmp_path, capsys):
    builder = ProgramBuilder("pickled")
    builder.movi(1, 5)
    builder.movi(1, 0)  # dead store: only visible with --dead-stores
    builder.halt()
    path = tmp_path / "program.pkl"
    path.write_bytes(pickle.dumps(builder.build()))

    assert main(["lint", "--pickle", str(path)]) == 0
    capsys.readouterr()
    assert main(["lint", "--pickle", str(path), "--dead-stores"]) == 1
    assert "dead_store" in capsys.readouterr().out


def test_lint_unknown_name_is_an_error():
    with pytest.raises(SystemExit):
        main(["lint", "no-such-workload"])


def test_lint_without_targets_is_an_error():
    with pytest.raises(SystemExit):
        main(["lint"])


# ----------------------------------------------------------------------
# repro fuzz
# ----------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
def test_fuzz_clean_run_exits_zero(capsys):
    assert main(["fuzz", "--max-examples", "3"]) == 0
    assert "no divergence" in capsys.readouterr().out


def test_fuzz_divergence_writes_artifact_and_fails(tmp_path, capsys,
                                                   monkeypatch):
    shape = ([0] * 8, [0] * 64, 1, [("nop",)] * 4)
    failure = FuzzFailure(shape=shape, program=build_program(shape),
                          detail="sst: register state diverged")

    import repro.workloads.fuzz as fuzz_module

    monkeypatch.setattr(fuzz_module, "HAVE_HYPOTHESIS", True)
    monkeypatch.setattr(fuzz_module, "fuzz",
                        lambda max_examples: failure)
    out = tmp_path / "counterexample.json"
    assert main(["fuzz", "--out", str(out)]) == 1
    text = capsys.readouterr().out
    assert "DIVERGENCE" in text and "shrunk" in text
    artifact = json.loads(out.read_text())
    assert artifact["detail"] == "sst: register state diverged"
    assert artifact["listing"]
