"""Microarchitectural sanitizer: unit checks per invariant, a seeded
store-buffer corruption caught mid-run, and the observationality
guarantee (identical cycles with the sanitizer on)."""

import pytest

from repro.analysis.sanitizer import (
    InOrderSanitizer,
    OoOSanitizer,
    SSTSanitizer,
    make_sanitizer,
    sanitize_enabled,
)
from repro.config import SSTConfig
from repro.core import SSTCore
from repro.errors import SanitizerError
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import Interpreter
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from repro.workloads import scatter_update
from tests.conftest import small_hierarchy_config


def tiny_program():
    builder = ProgramBuilder("tiny")
    builder.movi(1, 5)
    builder.addi(2, 1, 3)
    builder.halt()
    return builder.build()


def spec_workload():
    # Plenty of speculative stores AND multi-entry commit drains under
    # the small hierarchy (store_stream's episodes all roll back here,
    # so its store buffer never drains).
    return scatter_update(table_words=1 << 10, updates=96,
                          alias_per_1024=64)


def make_core(program, sanitized):
    """Build an SSTCore with the sanitizer deterministically on or off,
    regardless of whether the suite itself runs under REPRO_SANITIZE."""
    hierarchy = MemoryHierarchy(small_hierarchy_config())
    core = SSTCore(program, hierarchy, SSTConfig())
    SSTSanitizer.detach_memory_guard(core.state)
    core.sanitizer = None
    if sanitized:
        core.sanitizer = SSTSanitizer(core.name, program)
        core.sanitizer.attach_memory_guard(core.state)
    return core


# ----------------------------------------------------------------------
# Enable gate.
# ----------------------------------------------------------------------


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    assert make_sanitizer("sst", "core", tiny_program()) is None


@pytest.mark.parametrize("value", ["1", "on", "true", "YES"])
def test_truthy_env_values(monkeypatch, value):
    monkeypatch.setenv("REPRO_SANITIZE", value)
    assert sanitize_enabled()
    assert isinstance(make_sanitizer("sst", "core", tiny_program()),
                      SSTSanitizer)
    assert isinstance(make_sanitizer("ooo", "core", tiny_program()),
                      OoOSanitizer)
    assert isinstance(make_sanitizer("inorder", "core", tiny_program()),
                      InOrderSanitizer)


# ----------------------------------------------------------------------
# Per-invariant units (fakes stand in for the core's structures).
# ----------------------------------------------------------------------


class _FakeEntry:
    def __init__(self, seq, pc=0, addr=0x10_0000, value=1, resolved=True):
        self.seq = seq
        self.pc = pc
        self.addr = addr
        self.value = value
        self.resolved = resolved


class _FakeFile(list):
    capacity = 2

    def oldest(self):
        return self[0]


class _FakeQueue(list):
    capacity = 4


class _Checkpoint:
    def __init__(self, start_seq):
        self.start_seq = start_seq


def test_defer_requires_live_checkpoint():
    sanitizer = SSTSanitizer("sst", tiny_program())
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.on_defer(_FakeEntry(seq=3), _FakeFile(), _FakeQueue(),
                           cycle=7)
    assert excinfo.value.invariant == "dq-live-checkpoint"
    assert sanitizer.violations == 1


def test_defer_rejects_seq_before_oldest_epoch():
    sanitizer = SSTSanitizer("sst", tiny_program())
    checkpoints = _FakeFile([_Checkpoint(start_seq=10)])
    with pytest.raises(SanitizerError):
        sanitizer.on_defer(_FakeEntry(seq=3), checkpoints, _FakeQueue(),
                           cycle=7)
    # In-epoch defer is fine.
    sanitizer.on_defer(_FakeEntry(seq=12), checkpoints,
                       _FakeQueue([None]), cycle=8)


def test_replay_outside_live_epoch():
    sanitizer = SSTSanitizer("sst", tiny_program())
    checkpoints = _FakeFile([_Checkpoint(start_seq=10)])
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.on_replay(_FakeEntry(seq=3), checkpoints, cycle=4)
    assert excinfo.value.invariant == "dq-live-checkpoint"


def test_occupancy_bounds():
    sanitizer = SSTSanitizer("sst", tiny_program())
    over_full = _FakeQueue([None] * 5)  # capacity 4
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.on_spec_store(over_full, cycle=1)
    assert excinfo.value.invariant == "occupancy"
    with pytest.raises(SanitizerError):
        sanitizer.on_checkpoint(_FakeFile([None] * 3), cycle=1)


def test_drain_rejects_unresolved_entry():
    sanitizer = SSTSanitizer("sst", tiny_program())
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.on_drain_begin(
            [_FakeEntry(seq=1, addr=None, value=None, resolved=False)],
            cycle=9,
        )
    assert excinfo.value.invariant == "sb-fifo-drain"


def test_drain_rejects_inverted_order():
    sanitizer = SSTSanitizer("sst", tiny_program())
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.on_drain_begin([_FakeEntry(seq=5), _FakeEntry(seq=2)],
                                 cycle=9)
    assert "inverted" in excinfo.value.detail


def test_store_containment_guard():
    class _Memory:
        def __init__(self):
            self.writes = []

        def write(self, addr, value):
            self.writes.append((addr, value))

    class _State:
        pass

    state = _State()
    state.memory = _Memory()
    sanitizer = SSTSanitizer("sst", tiny_program())
    sanitizer.attach_memory_guard(state)

    state.memory.write(8, 1)  # outside an episode: allowed
    sanitizer.on_episode_begin(0)
    with pytest.raises(SanitizerError) as excinfo:
        state.memory.write(16, 2)
    assert excinfo.value.invariant == "spec-store-containment"
    assert (16, 2) not in state.memory.writes  # blocked before the write

    sanitizer.on_drain_begin([], cycle=1)  # commit drain: allowed
    state.memory.write(24, 3)
    sanitizer.on_drain_end()
    sanitizer.on_episode_end(2)
    state.memory.write(32, 4)

    SSTSanitizer.detach_memory_guard(state)
    assert "write" not in state.memory.__dict__
    assert state.memory.writes == [(8, 1), (24, 3), (32, 4)]


def test_zero_register_check():
    sanitizer = SSTSanitizer("sst", tiny_program())
    regs = [0] * 16
    sanitizer.check_zero_register(regs)
    regs[0] = 7
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.check_zero_register(regs, cycle=3)
    assert excinfo.value.invariant == "zero-register"


def test_reconvergence_accepts_golden_state():
    program = tiny_program()
    golden = Interpreter(program)
    state = golden.run()
    sanitizer = SSTSanitizer("sst", program)
    sanitizer.check_reconvergence(golden.stats.instructions,
                                  state.regs, state.memory)
    assert sanitizer.violations == 0


def test_reconvergence_flags_diverged_register():
    program = tiny_program()
    golden = Interpreter(program)
    state = golden.run()
    wrong = list(state.regs)
    wrong[2] += 1
    sanitizer = SSTSanitizer("sst", program)
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.check_reconvergence(golden.stats.instructions,
                                      wrong, None)
    assert excinfo.value.invariant == "replay-reconvergence"
    assert "r2" in excinfo.value.detail


def test_reconvergence_flags_instruction_count_overrun():
    program = tiny_program()
    sanitizer = SSTSanitizer("sst", program)
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.check_reconvergence(10_000, [0] * 16, None)
    assert "halts after" in excinfo.value.detail


def test_error_message_carries_context():
    sanitizer = SSTSanitizer("sst-core-3", tiny_program())
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer._fail("occupancy", "DQ overflow", cycle=42,
                        strand="ahead")
    message = str(excinfo.value)
    assert "occupancy" in message
    assert "sst-core-3" in message
    assert "42" in message
    assert "ahead" in message


# ----------------------------------------------------------------------
# Seeded corruption on a real run.
# ----------------------------------------------------------------------


def test_seeded_sb_corruption_is_caught():
    """Invert the store buffer's drain order mid-run: the sanitizer must
    reject the drain before any corrupted store reaches memory."""
    program = spec_workload()
    core = make_core(program, sanitized=True)

    real_drain = core.sb.drain_below
    multi_entry_drains = 0

    def corrupted_drain(seq):
        nonlocal multi_entry_drains
        entries = real_drain(seq)
        if len(entries) > 1:
            multi_entry_drains += 1
        return list(reversed(entries))

    core.sb.drain_below = corrupted_drain  # drain_all routes here too

    with pytest.raises(SanitizerError) as excinfo:
        core.run()
    assert excinfo.value.invariant == "sb-fifo-drain"
    assert core.sanitizer.violations == 1
    # The corruption fired at the first drain big enough to show it.
    assert multi_entry_drains == 1


def test_unsanitized_core_misses_the_same_corruption():
    """Control: without the sanitizer the inverted drain commits
    silently (stores are to distinct addresses), which is exactly why
    the continuous check earns its keep."""
    program = spec_workload()
    core = make_core(program, sanitized=False)
    real_drain = core.sb.drain_below
    core.sb.drain_below = lambda seq: list(reversed(real_drain(seq)))
    result = core.run()  # no error raised
    assert result.instructions > 0


# ----------------------------------------------------------------------
# Observationality: identical timing with the sanitizer riding along.
# ----------------------------------------------------------------------


def test_sanitized_run_is_cycle_identical_and_clean():
    program = spec_workload()
    plain = make_core(program, sanitized=False).run()
    sanitized_core = make_core(program, sanitized=True)
    sanitized = sanitized_core.run()

    verify_against_golden(sanitized, program)
    assert sanitized.cycles == plain.cycles
    assert sanitized.instructions == plain.instructions
    assert sanitized_core.sanitizer.violations == 0
    # The guard detached at finalize, restoring the bound method.
    assert "write" not in sanitized_core.state.memory.__dict__
