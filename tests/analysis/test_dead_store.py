"""The opt-in dead-store passes: register writes and memory stores that
are provably overwritten before any read, with the conservatisms that
keep real workloads clean (halt-state observability, loop-carried
reads, unknown-address loads)."""

import pytest

from repro.analysis.proglint import DiagKind, lint_program
from repro.isa.builder import ProgramBuilder
from repro.workloads import ANALYSIS_WORKLOADS, WORKLOAD_FACTORIES


def dead_stores(program):
    return [diag for diag in lint_program(program, dead_stores=True)
            if diag.kind is DiagKind.DEAD_STORE]


# ----------------------------------------------------------------------
# Register dead stores.
# ----------------------------------------------------------------------


def test_overwritten_register_is_flagged():
    builder = ProgramBuilder("dead-reg")
    builder.movi(1, 5)
    builder.movi(1, 0)
    builder.halt()
    [diag] = dead_stores(builder.build())
    assert diag.pc == 0


def test_register_live_at_halt_is_not_flagged():
    # Final register state is architecturally observable: a write with
    # no later read is only dead if something overwrites it.
    builder = ProgramBuilder("live-at-halt")
    builder.movi(1, 5)
    builder.halt()
    assert dead_stores(builder.build()) == []


def test_read_on_one_branch_path_keeps_the_write_live():
    builder = ProgramBuilder("one-path-read")
    builder.movi(1, 1)
    builder.movi(2, 7)            # read on the taken path only
    builder.beq(1, 0, "skip")
    builder.add(3, 2, 1)
    builder.label("skip")
    builder.movi(2, 0)
    builder.halt()
    assert dead_stores(builder.build()) == []


def test_loop_carried_read_keeps_the_write_live():
    builder = ProgramBuilder("loop-read")
    builder.movi(1, 4)
    builder.label("top")
    builder.movi(2, 9)
    builder.add(3, 2, 1)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, "top")
    builder.halt()
    assert dead_stores(builder.build()) == []


# ----------------------------------------------------------------------
# Memory dead stores.
# ----------------------------------------------------------------------


def test_overwritten_memory_store_is_flagged():
    builder = ProgramBuilder("dead-mem")
    builder.movi(1, 0x10_0000)
    builder.movi(2, 7)
    builder.st(2, 1, 0)
    builder.st(2, 1, 0)
    builder.halt()
    [diag] = dead_stores(builder.build())
    assert diag.pc == 2


def test_intervening_load_keeps_the_store_live():
    builder = ProgramBuilder("read-between")
    builder.movi(1, 0x10_0000)
    builder.movi(2, 7)
    builder.st(2, 1, 0)
    builder.ld(3, 1, 0)
    builder.st(3, 1, 0)
    builder.halt()
    assert dead_stores(builder.build()) == []


def test_unknown_address_load_keeps_every_store_live():
    # A load whose address the constant propagation cannot resolve may
    # read anything: must-overwrite facts are discarded.
    builder = ProgramBuilder("unknown-load")
    builder.data_word(0x10_0008, 0x10_0000)
    builder.movi(1, 0x10_0000)
    builder.movi(2, 7)
    builder.st(2, 1, 0)
    builder.ld(4, 1, 8)      # loads a pointer...
    builder.ld(5, 4, 0)      # ...then dereferences it (unknown addr)
    builder.st(2, 1, 0)
    builder.halt()
    assert dead_stores(builder.build()) == []


def test_final_store_is_never_dead():
    # Memory at halt is architecturally observable.
    builder = ProgramBuilder("final-store")
    builder.movi(1, 0x10_0000)
    builder.movi(2, 7)
    builder.st(2, 1, 0)
    builder.halt()
    assert dead_stores(builder.build()) == []


# ----------------------------------------------------------------------
# Integration surfaces.
# ----------------------------------------------------------------------


def test_pass_is_opt_in():
    builder = ProgramBuilder("opt-in")
    builder.movi(1, 5)
    builder.movi(1, 0)
    builder.halt()
    program = builder.build()
    default_kinds = [d.kind for d in lint_program(program)]
    assert DiagKind.DEAD_STORE not in default_kinds
    assert dead_stores(program)


@pytest.mark.parametrize(
    "name", sorted({**WORKLOAD_FACTORIES, **ANALYSIS_WORKLOADS})
)
def test_builtin_workloads_are_dead_store_clean(name):
    registry = {**WORKLOAD_FACTORIES, **ANALYSIS_WORKLOADS}
    assert dead_stores(registry[name]()) == []
