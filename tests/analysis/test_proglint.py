"""Static verifier: one hand-built bad program per diagnostic kind,
plus the policies that keep real workloads lint-clean."""

import pytest

from repro.analysis.cfg import CFG
from repro.analysis.proglint import DiagKind, check_program, lint_program
from repro.config import inorder_machine
from repro.errors import ProgramLintError
from repro.isa.builder import ProgramBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import DataWord, Program
from repro.sim.runner import simulate
from repro.workloads.base import memoize_workload


def kinds(diagnostics):
    return [diag.kind for diag in diagnostics]


# ----------------------------------------------------------------------
# One bad program per diagnostic kind.
# ----------------------------------------------------------------------


def test_empty_program():
    program = Program([], name="empty")
    assert kinds(lint_program(program)) == [DiagKind.EMPTY_PROGRAM]


def test_no_halt():
    # Constructed directly: ProgramBuilder.build() would reject it.
    program = Program([Instruction(Op.MOVI, rd=1, imm=7)], name="no-halt")
    assert DiagKind.NO_HALT in kinds(lint_program(program))


def test_target_out_of_range():
    program = Program(
        [
            Instruction(Op.MOVI, rd=1, imm=0),
            Instruction(Op.BEQ, rs1=1, rs2=0, target=99),
            Instruction(Op.HALT),
        ],
        name="wild-branch",
    )
    diagnostics = lint_program(program)
    assert DiagKind.TARGET_OUT_OF_RANGE in kinds(diagnostics)
    [diag] = [d for d in diagnostics
              if d.kind is DiagKind.TARGET_OUT_OF_RANGE]
    assert diag.pc == 1


def test_unreachable_code():
    builder = ProgramBuilder("dead-block")
    builder.movi(1, 1)
    builder.jal(0, "end")
    builder.movi(2, 2)  # unreachable
    builder.movi(3, 3)  # unreachable (same block)
    builder.label("end")
    builder.halt()
    diagnostics = lint_program(builder.build())
    assert kinds(diagnostics) == [DiagKind.UNREACHABLE_CODE]
    assert diagnostics[0].pc == 2


def test_use_before_def():
    builder = ProgramBuilder("cold-read")
    builder.add(1, 2, 3)  # r2 and r3 never written
    builder.halt()
    diagnostics = lint_program(builder.build())
    assert kinds(diagnostics) == [DiagKind.USE_BEFORE_DEF] * 2
    assert {d.pc for d in diagnostics} == {0}


def test_use_before_def_joins_paths():
    # r2 is written on only one side of the branch: still a use-before-
    # def at the join (definitely-assigned means *every* path).
    builder = ProgramBuilder("one-sided")
    builder.movi(1, 1)
    builder.beq(1, 0, "skip")
    builder.movi(2, 5)
    builder.label("skip")
    builder.add(3, 2, 1)
    builder.halt()
    diagnostics = lint_program(builder.build())
    assert DiagKind.USE_BEFORE_DEF in kinds(diagnostics)


def test_zero_register_is_always_defined():
    builder = ProgramBuilder("r0-read")
    builder.add(1, 0, 0)  # reading r0 cold is fine: hardwired zero
    builder.halt()
    assert lint_program(builder.build()) == []


def test_zero_reg_write():
    builder = ProgramBuilder("r0-write")
    builder.movi(1, 5)
    builder.add(0, 1, 1)  # result silently discarded
    builder.halt()
    diagnostics = lint_program(builder.build())
    assert kinds(diagnostics) == [DiagKind.ZERO_REG_WRITE]
    assert diagnostics[0].pc == 1


def test_jal_link_discard_is_exempt():
    # ``jal(0, ...)`` is the conventional plain-jump idiom.
    builder = ProgramBuilder("plain-jump")
    builder.jal(0, "end")
    builder.label("end")
    builder.halt()
    assert lint_program(builder.build()) == []


def test_load_out_of_image():
    builder = ProgramBuilder("cold-load")
    builder.movi(1, 0x20_0000)  # no data word there, no store either
    builder.ld(2, 1, 0)
    builder.halt()
    diagnostics = lint_program(builder.build())
    assert kinds(diagnostics) == [DiagKind.LOAD_OUT_OF_IMAGE]
    assert diagnostics[0].pc == 1


def test_load_from_image_is_clean():
    builder = ProgramBuilder("warm-load")
    builder.data_word(0x10_0000, 42)
    builder.movi(1, 0x10_0000)
    builder.ld(2, 1, 0)
    builder.halt()
    assert lint_program(builder.build()) == []


def test_load_from_static_store_target_is_clean():
    # A store extends the program's own data segment (log/result
    # regions); loading it back is not a cold read.
    builder = ProgramBuilder("read-back")
    builder.movi(1, 0x20_0000)
    builder.movi(2, 7)
    builder.st(2, 1, 0)
    builder.ld(3, 1, 0)
    builder.halt()
    assert lint_program(builder.build()) == []


def test_misaligned_access():
    builder = ProgramBuilder("odd-addr")
    builder.movi(1, 0x10_0004)  # word size is 8
    builder.ld(2, 1, 0)
    builder.halt()
    diagnostics = lint_program(builder.build())
    assert kinds(diagnostics) == [DiagKind.MISALIGNED_ACCESS]


# ----------------------------------------------------------------------
# Reporting and integration surfaces.
# ----------------------------------------------------------------------


def test_check_program_raises_with_structured_diagnostics():
    builder = ProgramBuilder("bad")
    builder.add(1, 2, 2)
    builder.halt()
    program = builder.build()
    with pytest.raises(ProgramLintError) as excinfo:
        check_program(program)
    error = excinfo.value
    assert error.program_name == "bad"
    assert [d.kind for d in error.diagnostics] == [DiagKind.USE_BEFORE_DEF]
    assert "use_before_def" in str(error)


def test_diagnostic_str_carries_location():
    builder = ProgramBuilder("located")
    builder.movi(1, 3)
    builder.add(0, 1, 1)
    builder.halt()
    [diag] = lint_program(builder.build())
    text = str(diag)
    assert "located" in text and "pc 1" in text


def test_simulate_strict_rejects_bad_program():
    builder = ProgramBuilder("strict-reject")
    builder.add(1, 2, 2)
    builder.halt()
    with pytest.raises(ProgramLintError):
        simulate(inorder_machine(), builder.build(), strict=True)


def test_simulate_strict_accepts_clean_program():
    builder = ProgramBuilder("strict-ok")
    builder.movi(1, 3)
    builder.addi(1, 1, 4)
    builder.halt()
    result = simulate(inorder_machine(), builder.build(),
                      strict=True, verify=True)
    assert result.instructions == 3


def test_memoized_generators_are_verified_at_build_time():
    @memoize_workload
    def bad_generator():
        builder = ProgramBuilder("bad-generator")
        builder.add(1, 2, 2)  # use-before-def
        builder.halt()
        return builder.build()

    with pytest.raises(ProgramLintError):
        bad_generator()


# ----------------------------------------------------------------------
# CFG construction.
# ----------------------------------------------------------------------


def test_cfg_blocks_and_edges():
    builder = ProgramBuilder("loop")
    builder.movi(1, 4)           # 0  block 0
    builder.label("top")
    builder.addi(1, 1, -1)       # 1  block 1
    builder.bne(1, 0, "top")     # 2  block 1 -> {1, 2}
    builder.halt()               # 3  block 2
    cfg = CFG(builder.build())
    assert [("%d:%d" % (b.start, b.end)) for b in cfg.blocks] == \
        ["0:1", "1:3", "3:4"]
    assert cfg.blocks[0].successors == [1]
    assert sorted(cfg.blocks[1].successors) == [1, 2]
    assert cfg.blocks[2].successors == []
    assert cfg.reachable() == [True, True, True]


def test_cfg_out_of_range_target_drops_edge():
    program = Program(
        [
            Instruction(Op.JAL, rd=0, target=50),
            Instruction(Op.HALT),
        ],
        name="wild-jump",
    )
    cfg = CFG(program)
    assert cfg.blocks[0].successors == []
    assert cfg.reachable() == [True, False]


def test_data_word_misalignment_rejected_at_construction():
    with pytest.raises(Exception):
        DataWord(addr=3, value=1)


# ----------------------------------------------------------------------
# Fingerprint-keyed lint memoization.
# ----------------------------------------------------------------------


def _lintable(name="lint-cache-sample"):
    builder = ProgramBuilder(name)
    builder.movi(1, 5)
    builder.movi(1, 0)  # dead store keeps the diagnostics list non-empty
    builder.halt()
    return builder.build()


def test_lint_results_are_memoized_by_fingerprint():
    from repro.analysis import proglint

    proglint.clear_lint_cache()
    try:
        first = lint_program(_lintable())
        # Keyed by (fingerprint, pass selection): the opt-in dead-store
        # pass changes the result for the same program content.
        assert (_lintable().fingerprint(), False) in proglint._LINT_CACHE
        # A structurally identical rebuild hits the cache and agrees.
        second = lint_program(_lintable())
        assert first == second
        # Callers get fresh lists — mutating one must not poison the
        # cache.
        first.append("garbage")
        assert lint_program(_lintable()) == second
        # Same code under a different name is a different fingerprint
        # (the name is embedded in each diagnostic).
        other = lint_program(_lintable(name="other"))
        assert len(proglint._LINT_CACHE) == 2
        assert all(diag.program == "other" for diag in other)
    finally:
        proglint.clear_lint_cache()


def test_lint_cache_bound_resets_instead_of_growing():
    from repro.analysis import proglint

    proglint.clear_lint_cache()
    try:
        proglint._LINT_CACHE.update(
            ("fake%d" % n, ()) for n in range(proglint._LINT_CACHE_MAX)
        )
        lint_program(_lintable())
        assert len(proglint._LINT_CACHE) == 1
    finally:
        proglint.clear_lint_cache()
