"""Static speculative-leak taint pass: the seeded gadgets are flagged
(and only them), ordinary workloads stay silent, transient
reachability behaves, and the verdict is memoized."""

import pytest

from repro.analysis.taint import analyze_taint, clear_taint_cache, transient_pcs
from repro.analysis.proglint import DiagKind, check_program, lint_program
from repro.errors import ReproError
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.workloads import (
    ANALYSIS_WORKLOADS,
    WORKLOAD_FACTORIES,
    spec_leak_gadget,
    spec_leak_safe,
    spec_leak_store,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_taint_cache()
    yield
    clear_taint_cache()


# ----------------------------------------------------------------------
# The seeded gadget workloads.
# ----------------------------------------------------------------------


def test_gadget_load_is_flagged():
    report = analyze_taint(spec_leak_gadget())
    assert report.has_secrets
    assert len(report.gadgets) == 1
    [gadget] = report.gadgets
    assert gadget.kind is DiagKind.SPEC_LEAK_GADGET
    # The probe load, not the secret-reading load: the leak is the
    # tainted ADDRESS, not the tainted value.
    assert spec_leak_gadget().instructions[gadget.pc].op is Op.LD
    assert gadget.pc in report.transient_pcs


def test_safe_variant_is_clean():
    report = analyze_taint(spec_leak_safe())
    assert report.has_secrets
    assert report.gadgets == ()


def test_store_variant_is_flagged():
    report = analyze_taint(spec_leak_store())
    assert len(report.gadgets) == 1
    assert spec_leak_store().instructions[
        report.gadgets[0].pc].op is Op.ST


def test_gadget_workloads_pass_default_lint():
    # SPEC_LEAK_GADGET is the taint pass's diagnostic, not proglint's:
    # the gadget programs build through memoize_workload's strict check.
    for factory in ANALYSIS_WORKLOADS.values():
        check_program(factory())
        assert lint_program(factory()) == []


# ----------------------------------------------------------------------
# Ordinary programs: no secrets, no noise.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
def test_suite_workloads_have_no_gadgets(name):
    report = analyze_taint(WORKLOAD_FACTORIES[name]())
    assert not report.has_secrets
    assert report.gadgets == ()


def test_secrets_without_transient_address_use_are_silent():
    builder = ProgramBuilder("secret-but-safe")
    builder.secret_words(0x10_0000, [7])
    builder.movi(1, 0x10_0000)
    builder.ld(2, 1, 0)      # reads the secret...
    builder.addi(2, 2, 1)    # ...computes on it...
    builder.st(2, 1, 8)      # ...stores the VALUE: no address leak
    builder.halt()
    report = analyze_taint(builder.build())
    assert report.has_secrets
    assert report.gadgets == ()


# ----------------------------------------------------------------------
# Transient reachability.
# ----------------------------------------------------------------------


def test_prefix_before_first_trigger_is_not_transient():
    builder = ProgramBuilder("prefix")
    builder.movi(1, 0x10_0000)  # 0: before any trigger
    builder.movi(2, 3)          # 1
    builder.data_word(0x10_0000, 9)
    builder.ld(3, 1, 0)         # 2: the trigger itself
    builder.add(4, 3, 2)        # 3: transient
    builder.halt()              # 4: transient
    transient = transient_pcs(builder.build())
    assert 0 not in transient and 1 not in transient and 2 not in transient
    assert transient == {3, 4}


def test_both_branch_edges_are_transient():
    builder = ProgramBuilder("both-edges")
    builder.data_word(0x10_0000, 1)
    builder.movi(1, 0x10_0000)  # 0
    builder.ld(2, 1, 0)         # 1: trigger
    builder.beq(2, 0, "skip")   # 2: transient (same block as trigger)
    builder.movi(3, 1)          # 3: fall-through edge
    builder.label("skip")
    builder.movi(4, 2)          # 4: taken edge
    builder.halt()              # 5
    transient = transient_pcs(builder.build())
    # Every pc after the load, through both predictor outcomes.
    assert transient == {2, 3, 4, 5}


def test_program_without_loads_has_no_transient_window():
    builder = ProgramBuilder("alu-only")
    builder.movi(1, 3)
    builder.addi(2, 1, 4)
    builder.halt()
    assert transient_pcs(builder.build()) == frozenset()


# ----------------------------------------------------------------------
# Secret-range plumbing.
# ----------------------------------------------------------------------


def test_secret_ranges_must_be_aligned_and_non_empty():
    builder = ProgramBuilder("bad-range")
    builder.halt()
    builder.mark_secret(0x10_0001, 0x10_0008)
    with pytest.raises(ReproError):
        builder.build()


def test_secret_ranges_change_the_fingerprint():
    def sample(secret):
        builder = ProgramBuilder("fp")
        builder.data_word(0x10_0000, 5)
        if secret:
            builder.mark_secret(0x10_0000, 0x10_0008)
        builder.halt()
        return builder.build()

    assert sample(False).fingerprint() != sample(True).fingerprint()


def test_is_secret_addr_overlaps_words():
    builder = ProgramBuilder("overlap")
    builder.secret_words(0x10_0008, [1])
    builder.halt()
    program = builder.build()
    assert program.is_secret_addr(0x10_0008)
    assert not program.is_secret_addr(0x10_0010)
    assert not program.is_secret_addr(0x10_0000)


# ----------------------------------------------------------------------
# Memoization.
# ----------------------------------------------------------------------


def test_reports_are_memoized_by_fingerprint():
    first = analyze_taint(spec_leak_gadget())
    second = analyze_taint(spec_leak_gadget())
    assert first is second
    clear_taint_cache()
    assert analyze_taint(spec_leak_gadget()) is not first
