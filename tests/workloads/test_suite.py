"""Suite registry: scales, names, composition."""

import pytest

from repro.errors import ConfigError
from repro.workloads.suite import (
    WORKLOAD_FACTORIES,
    commercial_suite,
    compute_suite,
    full_suite,
)


def test_commercial_suite_names():
    names = [program.name for program in commercial_suite("tiny")]
    assert names == ["oltp-chase", "db-hashjoin", "index-btree",
                     "web-storelog"]


def test_compute_suite_names():
    names = [program.name for program in compute_suite("tiny")]
    assert names == ["fp-stream", "int-branchy", "compute-matmul"]


def test_full_suite_is_union():
    assert len(full_suite("tiny")) == 7


def test_scales_grow():
    tiny = commercial_suite("tiny")
    small = commercial_suite("small")
    for tiny_program, small_program in zip(tiny, small):
        assert len(small_program.data) >= len(tiny_program.data)


def test_unknown_scale_rejected():
    with pytest.raises(ConfigError, match="unknown scale"):
        commercial_suite("huge")


def test_factories_cover_all_suites():
    suite_names = {p.name for p in full_suite("tiny")}
    assert suite_names == set(WORKLOAD_FACTORIES)


def test_tiny_suite_programs_run():
    from repro.isa.interpreter import Interpreter

    for program in full_suite("tiny"):
        Interpreter(program, max_steps=2_000_000).run()
