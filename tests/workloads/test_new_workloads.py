"""Scatter-update and graph-BFS generators."""

import pytest

from repro.config import SSTConfig, sst_machine, inorder_machine
from repro.isa.interpreter import Interpreter
from repro.sim.runner import simulate
from repro.workloads import graph_bfs, scatter_update
from repro.workloads.base import RESULT_ADDR
from tests.conftest import small_hierarchy_config


def test_scatter_terminates_and_writes_result():
    program = scatter_update(table_words=512, updates=64)
    state = Interpreter(program, max_steps=500_000).run()
    assert state.memory.read(RESULT_ADDR) != 0


def test_scatter_alias_validation():
    with pytest.raises(ValueError):
        scatter_update(alias_per_1024=2000)
    with pytest.raises(ValueError):
        scatter_update(table_words=1000)


def test_scatter_alias_controls_hot_pointers():
    from repro.workloads.base import HEAP_BASE
    from repro.workloads.scatter import HOT_WORDS

    hot_top = HEAP_BASE + 8 * HOT_WORDS
    def hot_fraction(program):
        pointers = [w.value for w in program.data
                    if w.value >= HEAP_BASE and w.addr > hot_top]
        hot = sum(1 for p in pointers if p < hot_top)
        return hot / len(pointers)
    none = scatter_update(table_words=1024, alias_per_1024=0)
    some = scatter_update(table_words=1024, alias_per_1024=128)
    assert hot_fraction(none) == 0.0
    assert 0.05 < hot_fraction(some) < 0.25


def test_scatter_conservative_vs_bypass_both_correct():
    program = scatter_update(table_words=512, updates=96,
                             alias_per_1024=128)
    hierarchy = small_hierarchy_config()
    for bypass in (True, False):
        machine = sst_machine(hierarchy)
        machine = type(machine)(
            core_kind=machine.core_kind, hierarchy=hierarchy,
            sst=SSTConfig(bypass_unresolved_stores=bypass),
            name=f"sst-{bypass}",
        )
        simulate(machine, program, verify=True)


def test_bfs_visits_every_vertex():
    vertices = 128
    program = graph_bfs(vertices=vertices, avg_degree=3)
    state = Interpreter(program, max_steps=2_000_000).run()
    assert state.memory.read(RESULT_ADDR) == vertices


def test_bfs_deterministic():
    a = Interpreter(graph_bfs(vertices=64, seed=5), max_steps=10**6).run()
    b = Interpreter(graph_bfs(vertices=64, seed=5), max_steps=10**6).run()
    assert a.same_architectural_state(b)


def test_bfs_validation():
    with pytest.raises(ValueError):
        graph_bfs(vertices=1)
    with pytest.raises(ValueError):
        graph_bfs(avg_degree=0)


def test_bfs_speculation_correct_and_profitable():
    program = graph_bfs(vertices=256, avg_degree=4)
    hierarchy = small_hierarchy_config()
    base = simulate(inorder_machine(hierarchy), program, verify=True)
    fast = simulate(sst_machine(hierarchy), program, verify=True)
    assert fast.speedup_over(base) > 1.1
    # BFS speculates across visited-checks: some deferred branches fail.
    stats = fast.extra["sst"]
    assert stats.deferred_branches > 0
