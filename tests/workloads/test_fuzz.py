"""The differential fuzzer: shapes build lint-clean programs, the
check accepts healthy cores, and a seeded divergence is found and
shrunk to a minimal reproducer."""

import pytest

from repro.analysis.proglint import check_program
from repro.isa.interpreter import run_program
from repro.isa.opcodes import Op
from repro.workloads import fuzz as fuzz_module
from repro.workloads.fuzz import (
    CORE_FACTORIES,
    HAVE_HYPOTHESIS,
    build_program,
    corrupt,
    differential_check,
    fuzz,
)

pytestmark = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

# A hand-written shape exercising every atom family.
SHAPE = (
    [3, 1, 4, 1, 5, 9, 2, 6],
    [n * 11 for n in range(fuzz_module.HEAP_WORDS)],
    2,
    [
        ("alu", Op.SUB, 1, 2, 3),
        ("load", 4, 1),
        ("store", 4, 2),
        ("branch", Op.BNE, 1, 2, 1),
        ("membar",),
        ("call",),
        ("prefetch", 3),
    ],
)


def test_build_program_is_lint_clean_and_deterministic():
    program = build_program(SHAPE)
    check_program(program)
    again = build_program(SHAPE)
    assert program.fingerprint() == again.fingerprint()


def test_differential_check_passes_on_healthy_cores():
    assert differential_check(build_program(SHAPE)) is None


def test_core_factories_cover_all_machine_variants():
    names = [name for name, _ in CORE_FACTORIES]
    assert names == ["inorder", "ooo", "ooo-oracle", "sst",
                     "ea-conservative", "sst-stressed", "sst-stall",
                     "scout-only"]


def test_corrupt_flips_exactly_the_first_sub():
    program = build_program(SHAPE)
    twisted = corrupt(program)
    flips = [
        (a.op, b.op)
        for a, b in zip(program.instructions, twisted.instructions)
        if a.op is not b.op
    ]
    assert flips == [(Op.SUB, Op.ADD)]


def test_corrupt_without_sub_returns_program_unchanged():
    shape = (SHAPE[0], SHAPE[1], 1, [("nop",)] * 4)
    program = build_program(shape)
    assert corrupt(program) is program


def test_fuzz_returns_none_when_everything_agrees():
    assert fuzz(max_examples=5, check=lambda program: None) is None


def test_fuzz_finds_and_shrinks_a_seeded_divergence():
    # The check stands in for a buggy core: architectural state of the
    # program vs. the same program with its first SUB flipped to ADD.
    # hypothesis must both FIND a shape where the flip matters and
    # SHRINK it to the smallest such program.
    def seeded_check(program):
        twisted = corrupt(program)
        if twisted is program:
            return None
        golden, wrong = run_program(program), run_program(twisted)
        if golden.regs != wrong.regs or golden.memory != wrong.memory:
            return "seeded: SUB->ADD flip changed architectural state"
        return None

    failure = fuzz(max_examples=300, check=seeded_check)
    assert failure is not None
    assert "seeded" in failure.detail
    # Shrunk to the floor of the shape space: a single loop iteration
    # and the minimum body size, with the one load-bearing SUB intact.
    _, _, loop_count, body = failure.shape
    assert loop_count == 1
    assert len(body) == 4
    assert any(inst.op is Op.SUB for inst in failure.program.instructions)
    summary = failure.summary()
    assert summary["instructions"] == len(failure.program.instructions)
    assert summary["listing"]
