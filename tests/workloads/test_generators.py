"""Workload generators: determinism, validity, and the miss/branch
characteristics each one is supposed to create."""

import pytest

from repro.isa.interpreter import Interpreter
from repro.workloads import (
    array_stream,
    branchy_reduce,
    btree_lookup,
    hash_join,
    matrix_multiply,
    pointer_chase,
    store_stream,
)
from repro.workloads.base import RESULT_ADDR

GENERATORS = [
    lambda: pointer_chase(chains=2, nodes_per_chain=16, hops=24),
    lambda: hash_join(table_words=256, probes=32),
    lambda: hash_join(table_words=256, probes=32, chased_fraction=4),
    lambda: btree_lookup(array_words=128, lookups=8),
    lambda: array_stream(words=64),
    lambda: array_stream(words=64, write_back=True),
    lambda: branchy_reduce(iterations=48, data_words=128),
    lambda: branchy_reduce(iterations=48, data_words=128, biased=True),
    lambda: store_stream(records=16, payload_words=4, table_words=128),
    lambda: matrix_multiply(n=4),
]


@pytest.mark.parametrize("factory", GENERATORS)
def test_programs_validate_and_terminate(factory):
    program = factory()
    program.validate()
    interp = Interpreter(program, max_steps=500_000)
    state = interp.run()
    # Every workload writes its result/cursor to the result slot.
    assert state.memory.read(RESULT_ADDR) != 0


@pytest.mark.parametrize("factory", GENERATORS)
def test_determinism(factory):
    first = Interpreter(factory(), max_steps=500_000)
    second = Interpreter(factory(), max_steps=500_000)
    assert first.run().same_architectural_state(second.run())


def test_seed_changes_data():
    a = pointer_chase(chains=1, nodes_per_chain=32, hops=8, seed=1)
    b = pointer_chase(chains=1, nodes_per_chain=32, hops=8, seed=2)
    assert [w.value for w in a.data] != [w.value for w in b.data]


def test_pointer_chase_chain_structure():
    program = pointer_chase(chains=1, nodes_per_chain=8, hops=4)
    # Follow next pointers: the chain must be a single cycle of 8 nodes.
    nexts = {w.addr: w.value for w in program.data if w.addr % 16 == 0}
    start = next(iter(nexts))
    seen = set()
    node = start
    while node not in seen:
        seen.add(node)
        node = nexts[node]
    assert len(seen) == 8


def test_pointer_chase_validates_params():
    with pytest.raises(ValueError):
        pointer_chase(chains=0)
    with pytest.raises(ValueError):
        pointer_chase(chains=9)
    with pytest.raises(ValueError):
        pointer_chase(nodes_per_chain=1)


def test_hash_join_validates_params():
    with pytest.raises(ValueError):
        hash_join(table_words=1000)  # not a power of two
    with pytest.raises(ValueError):
        hash_join(chased_fraction=9)


def test_branch_bias_changes_predictability():
    from repro.workloads.base import HEAP_BASE

    biased = branchy_reduce(iterations=8, data_words=256, biased=True)
    unbiased = branchy_reduce(iterations=8, data_words=256, biased=False)
    def odd_fraction(program):
        values = [w.value for w in program.data
                  if w.addr >= HEAP_BASE]
        return sum(v & 1 for v in values) / len(values)
    assert odd_fraction(biased) < 0.15
    assert 0.35 < odd_fraction(unbiased) < 0.65


def test_matrix_multiply_is_correct():
    import numpy

    n = 4
    program = matrix_multiply(n=n, seed=11)
    words = {w.addr: w.value for w in program.data}
    from repro.workloads.base import HEAP_BASE

    a = numpy.array([[words[HEAP_BASE + 8 * (i * n + j)]
                      for j in range(n)] for i in range(n)], dtype=object)
    b_base = HEAP_BASE + 8 * n * n
    b = numpy.array([[words[b_base + 8 * (i * n + j)]
                      for j in range(n)] for i in range(n)], dtype=object)
    expected = int((a @ b).sum())
    state = Interpreter(program, max_steps=500_000).run()
    assert state.memory.read(RESULT_ADDR) == expected
