"""The library's strongest correctness property: *random programs end in
the same architectural state on every core*.

A generated program has a counted outer loop, data-dependent forward
branches, leaf calls, safe (masked, aligned) loads and stores over a
small shared heap, long-latency ops and barriers.  Any bug in deferral,
replay ordering, store forwarding, last-writer merge, rollback, or
scout re-execution shows up as a register/memory diff against the
golden interpreter.
"""

from hypothesis import given, settings, strategies as st

from repro.config import InOrderConfig, OoOConfig, SSTConfig
from repro.baselines.inorder import InOrderCore
from repro.baselines.ooo import OoOCore
from repro.core import SSTCore
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.registers import RA_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from tests.conftest import small_hierarchy_config

HEAP = 0x100000
HEAP_WORDS = 64
POOL = list(range(1, 9))  # general registers used by generated code
ALU_REG_OPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SLT,
               Op.SLTU, Op.DIV, Op.REM]
ALU_IMM_OPS = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI]
SHIFT_OPS = [Op.SLLI, Op.SRLI, Op.SRAI]
BRANCH_OPS = [Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU]

reg = st.sampled_from(POOL)
reg_or_zero = st.sampled_from([0] + POOL)

atom = st.one_of(
    st.tuples(st.just("alu"), st.sampled_from(ALU_REG_OPS), reg,
              reg_or_zero, reg_or_zero),
    st.tuples(st.just("alui"), st.sampled_from(ALU_IMM_OPS), reg, reg,
              st.integers(-128, 127)),
    st.tuples(st.just("shift"), st.sampled_from(SHIFT_OPS), reg, reg,
              st.integers(0, 63)),
    st.tuples(st.just("movi"), reg, st.integers(-(2**40), 2**40)),
    st.tuples(st.just("load"), reg, reg),
    st.tuples(st.just("store"), reg, reg),
    st.tuples(st.just("branch"), st.sampled_from(BRANCH_OPS), reg,
              reg_or_zero, st.integers(1, 3)),
    st.tuples(st.just("call"),),
    st.tuples(st.just("membar"),),
    st.tuples(st.just("prefetch"), reg),
    st.tuples(st.just("nop"),),
)

program_shape = st.tuples(
    st.lists(st.integers(0, 2**32), min_size=8, max_size=8),  # reg init
    st.lists(st.integers(0, 2**20), min_size=HEAP_WORDS,
             max_size=HEAP_WORDS),  # heap init
    st.integers(1, 5),  # loop iterations
    st.lists(atom, min_size=4, max_size=28),  # loop body
)


def build_program(shape) -> "ProgramBuilder":
    reg_init, heap_init, loop_count, body = shape
    builder = ProgramBuilder("random")
    builder.data_words(HEAP, heap_init)
    for index, value in enumerate(reg_init):
        builder.movi(POOL[index], value)
    builder.movi(10, HEAP)
    builder.movi(11, loop_count)
    builder.label("top")
    label_id = [0]

    def emit(item):
        kind = item[0]
        if kind == "alu":
            _, op, rd, rs1, rs2 = item
            builder.alu(op, rd, rs1, rs2)
        elif kind == "alui":
            _, op, rd, rs1, imm = item
            builder.alui(op, rd, rs1, imm)
        elif kind == "shift":
            _, op, rd, rs1, amount = item
            builder.alui(op, rd, rs1, amount)
        elif kind == "movi":
            _, rd, value = item
            builder.movi(rd, value)
        elif kind == "load":
            _, rd, base = item
            builder.andi(12, base, 8 * (HEAP_WORDS - 1))
            builder.add(12, 12, 10)
            builder.ld(rd, 12, 0)
        elif kind == "store":
            _, src, base = item
            builder.andi(12, base, 8 * (HEAP_WORDS - 1))
            builder.add(12, 12, 10)
            builder.st(src, 12, 0)
        elif kind == "prefetch":
            (_, base) = item
            builder.andi(12, base, 8 * (HEAP_WORDS - 1))
            builder.add(12, 12, 10)
            builder.prefetch(12, 0)
        elif kind == "membar":
            builder.membar()
        elif kind == "nop":
            builder.nop()
        elif kind == "call":
            builder.jal(RA_REG, "leaf")
        else:  # pragma: no cover
            raise AssertionError(kind)

    index = 0
    while index < len(body):
        item = body[index]
        if item[0] == "branch":
            _, op, rs1, rs2, skip = item
            label = f"skip{label_id[0]}"
            label_id[0] += 1
            builder.branch(op, rs1, rs2, label)
            for skipped in body[index + 1:index + 1 + skip]:
                if skipped[0] != "branch":  # keep nesting simple
                    emit(skipped)
            builder.label(label)
            index += 1 + skip
        else:
            emit(item)
            index += 1

    builder.addi(11, 11, -1)
    builder.bne(11, 0, "top")
    builder.halt()
    builder.label("leaf")
    builder.xor(1, 1, 2)
    builder.addi(2, 2, 3)
    builder.jalr(0, RA_REG, 0)
    return builder.build()


CORE_FACTORIES = [
    ("inorder", lambda p, h: InOrderCore(p, h, InOrderConfig())),
    ("ooo", lambda p, h: OoOCore(p, h, OoOConfig(
        rob_size=32, iq_size=16, lsq_size=16))),
    ("ooo-oracle", lambda p, h: OoOCore(p, h, OoOConfig(
        rob_size=64, iq_size=21, lsq_size=21, perfect_disambiguation=True))),
    ("sst", lambda p, h: SSTCore(p, h, SSTConfig())),
    ("ea-conservative", lambda p, h: SSTCore(p, h, SSTConfig(
        checkpoints=1, bypass_unresolved_stores=False))),
    ("sst-stressed", lambda p, h: SSTCore(p, h, SSTConfig(
        checkpoints=3, dq_size=3, sb_size=2))),
    ("sst-stall", lambda p, h: SSTCore(p, h, SSTConfig(
        dq_size=4, sb_size=4, scout_enabled=False))),
    ("scout-only", lambda p, h: SSTCore(p, h, SSTConfig(
        checkpoints=1, scout_only=True))),
]


@settings(max_examples=60, deadline=None)
@given(program_shape)
def test_all_cores_match_golden_on_random_programs(shape):
    program = build_program(shape)
    for name, factory in CORE_FACTORIES:
        hierarchy = MemoryHierarchy(small_hierarchy_config(latency=60))
        core = factory(program, hierarchy)
        result = core.run(max_instructions=2_000_000)
        result.core_name = name
        verify_against_golden(result, program)


@settings(max_examples=25, deadline=None)
@given(program_shape, st.integers(20, 400))
def test_sst_matches_golden_across_latencies(shape, latency):
    program = build_program(shape)
    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=latency))
    result = SSTCore(program, hierarchy, SSTConfig()).run(
        max_instructions=2_000_000
    )
    verify_against_golden(result, program)


@settings(max_examples=25, deadline=None)
@given(program_shape, st.integers(13, 500))
def test_quantum_chopped_execution_is_cycle_exact(shape, quantum):
    """advance() in arbitrary quanta must equal one-shot run() exactly
    — the soundness condition of the multicore scheduler."""
    program = build_program(shape)

    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=60))
    whole = SSTCore(program, hierarchy, SSTConfig()).run(
        max_instructions=2_000_000
    )

    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=60))
    chopped_core = SSTCore(program, hierarchy, SSTConfig())
    while not chopped_core.advance(chopped_core.cycle + quantum,
                                   2_000_000):
        pass
    chopped = chopped_core.finalize()

    assert chopped.cycles == whole.cycles
    assert chopped.instructions == whole.instructions
    verify_against_golden(chopped, program)
