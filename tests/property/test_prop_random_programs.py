"""The library's strongest correctness property: *random programs end in
the same architectural state on every core*.

The shape strategy, the shape-to-program builder, and the core-variant
matrix now live in :mod:`repro.workloads.fuzz` (the differential
fuzzer CLI drives the same machinery); these tests run them under
hypothesis' ``@given`` so coverage accumulates across CI runs.  Any
bug in deferral, replay ordering, store forwarding, last-writer merge,
rollback, or scout re-execution shows up as a register/memory diff
against the golden interpreter.
"""

from hypothesis import given, settings, strategies as st

from repro.config import SSTConfig
from repro.core import SSTCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from repro.workloads.fuzz import (
    CORE_FACTORIES,
    build_program,
    program_shapes,
    small_hierarchy,
)

program_shape = program_shapes()


@settings(max_examples=60, deadline=None)
@given(program_shape)
def test_all_cores_match_golden_on_random_programs(shape):
    program = build_program(shape)
    for name, factory in CORE_FACTORIES:
        hierarchy = MemoryHierarchy(small_hierarchy(latency=60))
        core = factory(program, hierarchy)
        result = core.run(max_instructions=2_000_000)
        result.core_name = name
        verify_against_golden(result, program)


@settings(max_examples=25, deadline=None)
@given(program_shape, st.integers(20, 400))
def test_sst_matches_golden_across_latencies(shape, latency):
    program = build_program(shape)
    hierarchy = MemoryHierarchy(small_hierarchy(latency=latency))
    result = SSTCore(program, hierarchy, SSTConfig()).run(
        max_instructions=2_000_000
    )
    verify_against_golden(result, program)


@settings(max_examples=25, deadline=None)
@given(program_shape, st.integers(13, 500))
def test_quantum_chopped_execution_is_cycle_exact(shape, quantum):
    """advance() in arbitrary quanta must equal one-shot run() exactly
    — the soundness condition of the multicore scheduler."""
    program = build_program(shape)

    hierarchy = MemoryHierarchy(small_hierarchy(latency=60))
    whole = SSTCore(program, hierarchy, SSTConfig()).run(
        max_instructions=2_000_000
    )

    hierarchy = MemoryHierarchy(small_hierarchy(latency=60))
    chopped_core = SSTCore(program, hierarchy, SSTConfig())
    while not chopped_core.advance(chopped_core.cycle + quantum,
                                   2_000_000):
        pass
    chopped = chopped_core.finalize()

    assert chopped.cycles == whole.cycles
    assert chopped.instructions == whole.instructions
    verify_against_golden(chopped, program)
