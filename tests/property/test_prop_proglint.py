"""Workload-cleanliness property: every program a workload generator
can emit passes the static verifier with zero diagnostics.

The generators are also verified at build time by ``memoize_workload``
(a diagnostic raises :class:`ProgramLintError` before any simulator
sees the program), so this property fuzzes the *parameter space* —
sizes, seeds, aliasing knobs — rather than one blessed configuration
per generator.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.proglint import lint_program
from repro.workloads import (
    array_stream,
    branchy_reduce,
    btree_lookup,
    graph_bfs,
    hash_join,
    matrix_multiply,
    pointer_chase,
    scatter_update,
    store_stream,
)

# Table-like parameters must be powers of two (the generators mask with
# ``size - 1``); keep sizes modest so building stays fast.
pow2 = st.sampled_from([256, 512, 1024, 2048])
PROP = settings(max_examples=12, deadline=None)


def assert_clean(program):
    assert lint_program(program) == [], [
        str(diag) for diag in lint_program(program)
    ]


@PROP
@given(chains=st.integers(1, 6), nodes=st.integers(2, 48),
       hops=st.integers(1, 24))
def test_pointer_chase_lints_clean(chains, nodes, hops):
    assert_clean(pointer_chase(chains=chains, nodes_per_chain=nodes,
                               hops=hops))


@PROP
@given(table_words=pow2, probes=st.integers(1, 96))
def test_hash_join_lints_clean(table_words, probes):
    assert_clean(hash_join(table_words=table_words, probes=probes))


@PROP
@given(array_words=pow2, lookups=st.integers(1, 48))
def test_btree_lookup_lints_clean(array_words, lookups):
    assert_clean(btree_lookup(array_words=array_words, lookups=lookups))


@PROP
@given(records=st.integers(1, 96), payload_words=st.integers(1, 8),
       table_words=pow2)
def test_store_stream_lints_clean(records, payload_words, table_words):
    assert_clean(store_stream(records=records,
                              payload_words=payload_words,
                              table_words=table_words))


@PROP
@given(words=st.integers(8, 512), scale=st.integers(1, 7),
       write_back=st.booleans(), seed=st.integers(0, 2**16))
def test_array_stream_lints_clean(words, scale, write_back, seed):
    assert_clean(array_stream(words=words, scale=scale,
                              write_back=write_back, seed=seed))


@PROP
@given(iterations=st.integers(1, 128), data_words=pow2)
def test_branchy_reduce_lints_clean(iterations, data_words):
    assert_clean(branchy_reduce(iterations=iterations,
                                data_words=data_words))


@PROP
@given(n=st.integers(2, 10), seed=st.integers(0, 2**16))
def test_matrix_multiply_lints_clean(n, seed):
    assert_clean(matrix_multiply(n=n, seed=seed))


@PROP
@given(table_words=pow2, updates=st.integers(1, 96),
       alias=st.integers(0, 1024))
def test_scatter_update_lints_clean(table_words, updates, alias):
    assert_clean(scatter_update(table_words=table_words, updates=updates,
                                alias_per_1024=alias))


@PROP
@given(vertices=st.integers(2, 128), avg_degree=st.integers(1, 6),
       seed=st.integers(0, 2**16))
def test_graph_bfs_lints_clean(vertices, avg_degree, seed):
    assert_clean(graph_bfs(vertices=vertices, avg_degree=avg_degree,
                           seed=seed))
