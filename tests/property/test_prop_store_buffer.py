"""Store-buffer forwarding vs. an obviously-correct list model."""

from hypothesis import given, settings, strategies as st

from repro.core.store_buffer import StoreBuffer

ADDRS = [0x100, 0x108, 0x110, 0x118]


class ReferenceBuffer:
    def __init__(self):
        self.entries = []  # (seq, addr, value)

    def append(self, seq, addr, value):
        self.entries.append((seq, addr, value))

    def forward(self, addr, before_seq):
        best = None
        for seq, entry_addr, value in self.entries:
            if entry_addr == addr and seq < before_seq:
                if best is None or seq > best[1]:
                    best = (value, seq)
        return best

    def drain_below(self, seq):
        drained = sorted(
            [entry for entry in self.entries if entry[0] < seq]
        )
        self.entries = [entry for entry in self.entries if entry[0] >= seq]
        return [(addr, value) for _, addr, value in drained]


# Each op: (kind, addr_index, value); seqs assigned by position * 2 + 1
# in shuffled order to exercise out-of-order insertion.
ops = st.lists(
    st.tuples(st.sampled_from(ADDRS), st.integers(0, 1000)),
    min_size=1, max_size=30,
)
queries = st.lists(
    st.tuples(st.sampled_from(ADDRS), st.integers(0, 70)),
    min_size=1, max_size=30,
)


@settings(max_examples=80)
@given(ops, queries, st.randoms(use_true_random=False))
def test_forwarding_matches_reference(stores, lookups, rng):
    sb = StoreBuffer(capacity=64)
    reference = ReferenceBuffer()
    indexed = list(enumerate(stores))
    rng.shuffle(indexed)  # insert in scrambled seq order
    for position, (addr, value) in indexed:
        seq = position * 2 + 1
        sb.append_unresolved(seq, addr)
        sb.resolve(seq, addr, value)
        reference.append(seq, addr, value)
    for addr, before_seq in lookups:
        got = sb.forward(addr, before_seq)
        expected = reference.forward(addr, before_seq)
        assert got == expected


@settings(max_examples=60)
@given(ops, st.integers(0, 70))
def test_drain_below_matches_reference(stores, boundary):
    sb = StoreBuffer(capacity=64)
    reference = ReferenceBuffer()
    for position, (addr, value) in enumerate(stores):
        seq = position * 2 + 1
        sb.append_resolved(seq, addr, value)
        reference.append(seq, addr, value)
    drained = [(e.addr, e.value) for e in sb.drain_below(boundary)]
    assert drained == reference.drain_below(boundary)
    assert len(sb) == len(reference.entries)


@settings(max_examples=60)
@given(ops)
def test_capacity_never_exceeded(stores):
    sb = StoreBuffer(capacity=4)
    accepted = 0
    for position, (addr, value) in enumerate(stores):
        if sb.append_resolved(position + 1, addr, value):
            accepted += 1
        assert len(sb) <= 4
    assert accepted == min(len(stores), 4)
