"""Property pin for the block dispatch engine: on fuzzer-random, linted
programs, block execution is indistinguishable from per-instruction
stepping — functionally (interpreter state + stats) and in time
(SST cycle counts).

Reuses the random-program strategy from
:mod:`tests.property.test_prop_random_programs`."""

import os

from hypothesis import given, settings

from repro.analysis.proglint import lint_program
from repro.config import SSTConfig
from repro.core import SSTCore
from repro.isa import blockcache
from repro.isa.interpreter import Interpreter
from repro.memory.hierarchy import MemoryHierarchy
from tests.conftest import small_hierarchy_config
from tests.property.test_prop_random_programs import (
    build_program,
    program_shape,
)


class _flag:
    """Set REPRO_BLOCK_DISPATCH for one with-block (hypothesis runs the
    test body many times per pytest call, so monkeypatch can't scope
    this)."""

    def __init__(self, value):
        self.value = value

    def __enter__(self):
        self.saved = os.environ.get(blockcache.ENV_FLAG)
        os.environ[blockcache.ENV_FLAG] = self.value

    def __exit__(self, *exc):
        if self.saved is None:
            os.environ.pop(blockcache.ENV_FLAG, None)
        else:
            os.environ[blockcache.ENV_FLAG] = self.saved


def _interp(program, flag):
    with _flag(flag):
        interp = Interpreter(program)
        interp.run()
    return interp


@settings(max_examples=40, deadline=None)
@given(program_shape)
def test_block_interpreter_matches_stepping(shape):
    program = build_program(shape)
    # Lint first (the fuzzer only emits structurally valid code; the
    # diagnostics themselves are advisory) and pin the fingerprint
    # cache: a second lint of an equal program must agree.
    diagnostics = lint_program(program)
    assert lint_program(build_program(shape)) == diagnostics
    blocked = _interp(program, "1")
    stepped = _interp(program, "0")
    assert blocked.state.regs == stepped.state.regs
    assert blocked.state.memory == stepped.state.memory
    assert blocked.state.pc == stepped.state.pc
    assert blocked.stats == stepped.stats


@settings(max_examples=15, deadline=None)
@given(program_shape)
def test_sst_cycles_identical_with_blocks_off(shape):
    program = build_program(shape)
    results = {}
    for flag in ("1", "0"):
        with _flag(flag):
            hierarchy = MemoryHierarchy(small_hierarchy_config(latency=60))
            results[flag] = SSTCore(program, hierarchy, SSTConfig()).run(
                max_instructions=2_000_000
            )
    assert results["1"].cycles == results["0"].cycles
    assert results["1"].instructions == results["0"].instructions
    assert results["1"].state.regs == results["0"].state.regs
    assert results["1"].state.memory == results["0"].state.memory
