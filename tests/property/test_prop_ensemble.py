"""Property: *every lane of a random lockstep ensemble is bit-identical
to its scalar golden run*.

Lane families reuse the random-program generator from
``test_prop_random_programs``: one shared loop body (so every lane has
the same code shape — opcodes, registers, branch targets) with per-lane
register seeds, heap images, and loop counts.  Data-dependent branches
then diverge differently in every lane, exercising cohort split and
reconvergence, loop kernels, and the memory gather/scatter paths under
shapes no hand-written workload covers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.interpreter import Interpreter
from repro.sim.ensemble import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    EnsembleInterpreter,
    numpy_available,
)
from repro.workloads.fuzz import HEAP_WORDS, build_program
from tests.property.test_prop_random_programs import program_shape

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy not installed")

# Per-lane variation: everything that may differ under one code shape —
# MOVI immediates (register init, loop count) and the data image.
lane_variation = st.tuples(
    st.lists(st.integers(0, 2**32), min_size=8, max_size=8),
    st.lists(st.integers(0, 2**20), min_size=HEAP_WORDS,
             max_size=HEAP_WORDS),
    st.integers(1, 5),
)

ensemble_shape = st.tuples(
    program_shape,
    st.lists(lane_variation, min_size=2, max_size=6),
)


def build_lanes(shape):
    (reg_init, heap_init, loop_count, body), variations = shape
    lanes = [build_program((reg_init, heap_init, loop_count, body))]
    for regs, heap, count in variations:
        lanes.append(build_program((regs, heap, count, body)))
    for lane, program in enumerate(lanes):
        program.name = f"random@lane{lane}"
    assert len({p.shape_fingerprint() for p in lanes}) == 1
    return lanes


def assert_bit_identical(programs, outcomes, max_steps):
    for program, outcome in zip(programs, outcomes):
        interp = Interpreter(program, max_steps=max_steps)
        error = None
        try:
            interp.run()
        except Exception as exc:  # noqa: BLE001
            error = f"{type(exc).__name__}: {exc}"
        assert outcome.error == error
        assert outcome.state.regs == interp.state.regs
        assert outcome.state.memory == interp.state.memory
        assert outcome.state.pc == interp.state.pc
        assert outcome.stats == interp.stats


@settings(max_examples=40, deadline=None)
@given(ensemble_shape)
def test_random_ensembles_match_scalar(shape):
    programs = build_lanes(shape)
    outcomes = EnsembleInterpreter(
        programs, backend=BACKEND_NUMPY).run()
    assert_bit_identical(programs, outcomes, max_steps=50_000_000)


@settings(max_examples=15, deadline=None)
@given(ensemble_shape, st.integers(1, 400))
def test_random_ensembles_match_scalar_under_budget(shape, budget):
    programs = build_lanes(shape)
    outcomes = EnsembleInterpreter(
        programs, max_steps=budget, backend=BACKEND_NUMPY).run()
    assert_bit_identical(programs, outcomes, max_steps=budget)


@settings(max_examples=10, deadline=None)
@given(ensemble_shape)
def test_python_fallback_matches_numpy_on_random_ensembles(shape):
    programs = build_lanes(shape)
    vec = EnsembleInterpreter(programs, backend=BACKEND_NUMPY).run()
    ref = EnsembleInterpreter(programs, backend=BACKEND_PYTHON).run()
    for a, b in zip(vec, ref):
        assert a.error == b.error
        assert a.state.regs == b.state.regs
        assert a.state.memory == b.state.memory
        assert a.stats == b.stats
