"""Alias-stress property: random programs over a 4-word heap.

With only four memory words, almost every speculative load sits behind
a same-address or unknown-address store, so this hammers exactly the
paths the big-heap random test rarely reaches: store-buffer
forwarding chains, order-deferral, bypass conflict detection and the
resulting rollbacks.  Golden equivalence must still hold for every
policy combination.
"""

from hypothesis import given, settings, strategies as st

from repro.config import SSTConfig
from repro.core import SSTCore
from repro.isa.builder import ProgramBuilder
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.runner import verify_against_golden
from tests.conftest import small_hierarchy_config

HEAP = 0x100000
HEAP_WORDS = 4
POOL = list(range(1, 7))

mem_op = st.tuples(
    st.sampled_from(["load", "store", "chase"]),
    st.sampled_from(POOL),
    st.sampled_from(POOL),
)
alu_op = st.tuples(
    st.just("alu"),
    st.sampled_from(POOL),
    st.sampled_from(POOL),
    st.integers(-16, 16),
)
atom = st.one_of(mem_op, alu_op)

shape = st.tuples(
    st.lists(st.integers(0, HEAP_WORDS * 8), min_size=6, max_size=6),
    st.lists(st.sampled_from([HEAP + 8 * i for i in range(HEAP_WORDS)]),
             min_size=HEAP_WORDS, max_size=HEAP_WORDS),  # heap of pointers
    st.integers(1, 4),
    st.lists(atom, min_size=4, max_size=20),
)


def build(shape_value):
    reg_init, heap_init, loops, body = shape_value
    builder = ProgramBuilder("alias-stress")
    # The heap stores *pointers into itself*, so a loaded value used as
    # an address ("chase") is always valid — and always aliasing.
    builder.data_words(HEAP, heap_init)
    for index, value in enumerate(reg_init):
        builder.movi(POOL[index], value)
    builder.movi(10, HEAP)
    builder.movi(11, loops)
    builder.label("top")
    for item in body:
        if item[0] == "alu":
            _, rd, rs, imm = item
            builder.addi(rd, rs, imm)
        else:
            kind, rd, base = item
            builder.andi(12, base, 8 * (HEAP_WORDS - 1))
            builder.add(12, 12, 10)
            if kind == "load":
                builder.ld(rd, 12, 0)
            elif kind == "store":
                builder.st(rd, 12, 0)
            else:
                # Chase: load a word, use it as an address (masked back
                # into the heap, because stores may have replaced the
                # original pointer with an arbitrary value).
                builder.ld(13, 12, 0)
                builder.andi(13, 13, 8 * (HEAP_WORDS - 1))
                builder.add(13, 13, 10)
                builder.ld(rd, 13, 0)
    builder.addi(11, 11, -1)
    builder.bne(11, 0, "top")
    builder.halt()
    return builder.build()


CONFIGS = [
    SSTConfig(bypass_unresolved_stores=True),
    SSTConfig(bypass_unresolved_stores=False),
    SSTConfig(checkpoints=1, dq_size=4, sb_size=2),
    SSTConfig(checkpoints=4, dq_size=6, sb_size=3,
              bypass_unresolved_stores=True),
    SSTConfig(checkpoints=2, dq_size=8, sb_size=4, scout_enabled=False),
]


@settings(max_examples=60, deadline=None)
@given(shape)
def test_alias_heavy_programs_match_golden(shape_value):
    program = build(shape_value)
    for index, config in enumerate(CONFIGS):
        hierarchy = MemoryHierarchy(small_hierarchy_config(latency=80))
        core = SSTCore(program, hierarchy, config)
        result = core.run(max_instructions=2_000_000)
        result.core_name = f"sst-variant-{index}"
        verify_against_golden(result, program)


@settings(max_examples=30, deadline=None)
@given(shape)
def test_chase_stores_never_corrupt_memory(shape_value):
    """A focused double-check on the bypass policy alone, because a
    silent wrong-value forward is the scariest failure mode."""
    program = build(shape_value)
    hierarchy = MemoryHierarchy(small_hierarchy_config(latency=200))
    core = SSTCore(program, hierarchy,
                   SSTConfig(bypass_unresolved_stores=True))
    result = core.run(max_instructions=2_000_000)
    verify_against_golden(result, program)
