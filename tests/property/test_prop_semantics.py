"""Algebraic properties of the shared ALU/branch semantics."""

from hypothesis import given, strategies as st

from repro.isa.opcodes import Op
from repro.isa.semantics import (
    MASK64,
    alu_result,
    branch_taken,
    to_signed,
    to_unsigned,
)

u64 = st.integers(min_value=0, max_value=MASK64)


@given(u64)
def test_sign_conversion_roundtrips(value):
    assert to_unsigned(to_signed(value)) == value


@given(u64, u64)
def test_add_matches_modular_arithmetic(a, b):
    assert alu_result(Op.ADD, a, b) == (a + b) % (1 << 64)


@given(u64, u64)
def test_sub_is_inverse_of_add(a, b):
    total = alu_result(Op.ADD, a, b)
    assert alu_result(Op.SUB, total, b) == a


@given(u64, u64)
def test_xor_is_involution(a, b):
    once = alu_result(Op.XOR, a, b)
    assert alu_result(Op.XOR, once, b) == a


@given(u64, u64)
def test_div_rem_identity(a, b):
    quotient = to_signed(alu_result(Op.DIV, a, b))
    remainder = to_signed(alu_result(Op.REM, a, b))
    if to_unsigned(b) == 0:
        assert quotient == -1
        assert to_unsigned(remainder) == a
    else:
        reconstructed = to_unsigned(quotient * to_signed(b) + remainder)
        assert reconstructed == a


@given(u64, st.integers(min_value=0, max_value=63))
def test_shift_roundtrip_on_low_bits(a, amount):
    shifted = alu_result(Op.SLL, a, amount)
    back = alu_result(Op.SRL, shifted, amount)
    kept = (a << amount & MASK64) >> amount
    assert back == kept


@given(u64, u64)
def test_slt_matches_signed_compare(a, b):
    assert alu_result(Op.SLT, a, b) == int(to_signed(a) < to_signed(b))


@given(u64, u64)
def test_branch_complements(a, b):
    assert branch_taken(Op.BEQ, a, b) != branch_taken(Op.BNE, a, b)
    assert branch_taken(Op.BLT, a, b) != branch_taken(Op.BGE, a, b)
    assert branch_taken(Op.BLTU, a, b) != branch_taken(Op.BGEU, a, b)


@given(u64, u64)
def test_branch_trichotomy(a, b):
    less = branch_taken(Op.BLT, a, b)
    greater_equal = branch_taken(Op.BGE, a, b)
    equal = branch_taken(Op.BEQ, a, b)
    if equal:
        assert greater_equal and not less
