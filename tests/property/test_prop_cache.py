"""Cache model vs. a brute-force LRU reference, plus invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory.cache import Cache

LINE = 64


class ReferenceLRU:
    """Obviously-correct per-set LRU list model."""

    def __init__(self, sets, assoc):
        self.sets = sets
        self.assoc = assoc
        self._lists = [[] for _ in range(sets)]

    def _set_of(self, line):
        return (line // LINE) % self.sets

    def lookup(self, line):
        entries = self._lists[self._set_of(line)]
        if line in entries:
            entries.remove(line)
            entries.append(line)
            return True
        return False

    def fill(self, line):
        entries = self._lists[self._set_of(line)]
        if line in entries:
            entries.remove(line)
            entries.append(line)
            return
        if len(entries) >= self.assoc:
            entries.pop(0)
        entries.append(line)

    def contains(self, line):
        return line in self._lists[self._set_of(line)]


ops = st.lists(
    st.tuples(st.sampled_from(["access"]),
              st.integers(min_value=0, max_value=63)),
    min_size=1, max_size=200,
)


@settings(max_examples=60)
@given(ops)
def test_cache_matches_reference_lru(operations):
    config = CacheConfig(size_bytes=4 * 2 * LINE, assoc=2, line_bytes=LINE)
    cache = Cache(config)
    reference = ReferenceLRU(sets=config.num_sets, assoc=2)
    for _, line_index in operations:
        line = line_index * LINE
        hit = cache.lookup(line)
        ref_hit = reference.lookup(line)
        assert hit == ref_hit
        if not hit:
            cache.fill(line)
            reference.fill(line)
        cache.check_invariants()
    for line_index in range(64):
        line = line_index * LINE
        assert cache.contains(line) == reference.contains(line)


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                min_size=1, max_size=100))
def test_fill_then_contains(addresses):
    cache = Cache(CacheConfig(size_bytes=16 * 1024, assoc=4))
    for addr in addresses:
        cache.fill(addr)
        assert cache.contains(addr)
        cache.check_invariants()


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=300))
def test_occupancy_never_exceeds_assoc(line_indices):
    config = CacheConfig(size_bytes=2 * 2 * LINE, assoc=2, line_bytes=LINE)
    cache = Cache(config)
    for index in line_indices:
        cache.fill(index * LINE)
    for count in cache.set_occupancy().values():
        assert count <= config.assoc
