"""LaneCacheArray / LaneCacheView equivalence against the scalar Cache.

The timing ensemble's bit-identity contract rests on the lane-axis tag
store behaving exactly like N independent scalar caches — stats, LRU
victim choice, dirty-writeback signalling, prefetch-flag clearing, all
of it.  These tests drive randomized operation sequences through both
implementations and require full agreement.
"""

import random

import pytest

from repro.config import CacheConfig
from repro.errors import SimulatorInvariantError
from repro.memory.cache import Cache

np = pytest.importorskip("numpy")

from repro.memory.cache import LaneCacheArray, LaneCacheView  # noqa: E402


CONFIG = CacheConfig(size_bytes=1024, assoc=4, hit_latency=2,
                     line_bytes=64)


def _random_ops(rng, count):
    """A sequence of (op, addr, kwargs) exercising every code path."""
    ops = []
    for _ in range(count):
        addr = rng.randrange(0, 64) * 64 + rng.randrange(0, 64)
        kind = rng.randrange(0, 100)
        if kind < 45:
            ops.append(("lookup", addr, {
                "update_lru": rng.random() < 0.9,
                "count": rng.random() < 0.9,
            }))
        elif kind < 75:
            ops.append(("fill", addr, {"prefetched": rng.random() < 0.3}))
        elif kind < 85:
            ops.append(("contains", addr, {}))
        elif kind < 95:
            ops.append(("mark_dirty_if_present", addr, {}))
        else:
            ops.append(("lookup_then_fill", addr, {}))
    return ops


def _apply(cache, op, addr, kwargs):
    """Run one op against a Cache-like object, returning the outcome."""
    if op == "lookup":
        return cache.lookup(addr, **kwargs)
    if op == "fill":
        return cache.fill(addr, **kwargs)
    if op == "contains":
        return cache.contains(addr)
    if op == "mark_dirty_if_present":
        if cache.contains(addr):
            cache.mark_dirty(addr)
            return True
        return False
    if op == "lookup_then_fill":
        hit = cache.lookup(addr)
        if not hit:
            return hit, cache.fill(addr)
        return hit, None
    raise AssertionError(op)


@pytest.mark.parametrize("seed", range(6))
def test_lane_view_matches_scalar_cache(seed):
    rng = random.Random(seed)
    lanes = 4
    array = LaneCacheArray(CONFIG, lanes, name="L1D")
    scalars = [Cache(CONFIG, name="L1D") for _ in range(lanes)]
    views = [LaneCacheView(array, lane) for lane in range(lanes)]
    for lane in range(lanes):
        for op, addr, kwargs in _random_ops(rng, 600):
            expect = _apply(scalars[lane], op, addr, kwargs)
            got = _apply(views[lane], op, addr, kwargs)
            assert got == expect, (lane, op, hex(addr), kwargs)
    for lane in range(lanes):
        assert views[lane].stats == scalars[lane].stats
        assert array.stats_for(lane) == scalars[lane].stats


def test_lanes_are_independent():
    array = LaneCacheArray(CONFIG, 3, name="L1D")
    array.fill_lane(0, 0x1000)
    assert array.contains_lane(0, 0x1000)
    assert not array.contains_lane(1, 0x1000)
    assert not array.contains_lane(2, 0x1000)
    assert int(array.accesses[1]) == 0


def test_probe_then_commit_matches_counted_lookup():
    """probe_lanes + commit_hit_lanes ≡ one counted, LRU-updating
    lookup (plus mark_dirty for stores) on every hit lane."""
    rng = random.Random(7)
    lanes = 8
    array = LaneCacheArray(CONFIG, lanes, name="L1D")
    scalars = [Cache(CONFIG, name="L1D") for _ in range(lanes)]
    # Warm both with identical per-lane fills.
    for lane in range(lanes):
        for _ in range(40):
            addr = rng.randrange(0, 32) * 64
            array.fill_lane(lane, addr)
            scalars[lane].fill(addr)

    for round_idx in range(50):
        lane_idx = np.arange(lanes, dtype=np.intp)
        addrs = np.array(
            [rng.randrange(0, 32) * 64 for _ in range(lanes)],
            dtype=np.uint64,
        )
        lines = array.line_addr_lanes(addrs)
        store = round_idx % 3 == 0
        hit, sets, ways = array.probe_lanes(lane_idx, lines)
        # Scalar reference: probe result must match contains().
        for lane in range(lanes):
            assert bool(hit[lane]) == scalars[lane].contains(int(addrs[lane]))
        hit_lanes = lane_idx[hit]
        array.commit_hit_lanes(hit_lanes, sets[hit], ways[hit],
                               mark_dirty=store)
        miss_lanes = lane_idx[~hit]
        array.count_miss_lanes(miss_lanes)
        for lane in miss_lanes:
            array.fill_lane(int(lane), int(addrs[lane]))
        for lane in range(lanes):
            addr = int(addrs[lane])
            was_hit = scalars[lane].lookup(addr)
            assert was_hit == bool(hit[lane])
            if was_hit and store:
                scalars[lane].mark_dirty(addr)
            if not was_hit:
                scalars[lane].fill(addr)

    for lane in range(lanes):
        assert array.stats_for(lane) == scalars[lane].stats


def test_mark_dirty_absent_raises():
    array = LaneCacheArray(CONFIG, 2, name="L1D")
    with pytest.raises(SimulatorInvariantError, match="mark_dirty"):
        array.mark_dirty_lane(0, 0x2000)


def test_dirty_victim_writeback_matches():
    array = LaneCacheArray(CONFIG, 1, name="L1D")
    scalar = Cache(CONFIG, name="L1D")
    # Fill one set beyond capacity with dirty lines; victims must agree.
    num_sets = CONFIG.num_sets
    for i in range(CONFIG.assoc + 3):
        addr = i * num_sets * 64  # all map to set 0
        va = array.fill_lane(0, addr)
        vs = scalar.fill(addr)
        assert va == vs
        array.mark_dirty_lane(0, addr)
        scalar.mark_dirty(addr)
    assert array.stats_for(0) == scalar.stats
