"""MSHR semantics: merging, capacity stalls, expiry."""

from repro.memory.mshr import MSHRFile


def test_allocate_and_complete():
    mshr = MSHRFile(entries=2)
    start, merged = mshr.allocate(0x100, cycle=10)
    assert (start, merged) == (10, False)
    mshr.complete(0x100, ready_cycle=310)
    assert mshr.pending_ready(0x100, cycle=20) == 310


def test_merge_returns_existing_completion():
    mshr = MSHRFile(entries=2)
    mshr.allocate(0x100, 0)
    mshr.complete(0x100, 300)
    start, merged = mshr.allocate(0x100, 50)
    assert merged and start == 300
    assert mshr.stats.merges == 1


def test_full_file_delays_new_miss():
    mshr = MSHRFile(entries=1)
    mshr.allocate(0x100, 0)
    mshr.complete(0x100, 300)
    start, merged = mshr.allocate(0x200, 10)
    assert not merged
    assert start == 300  # waited for the outstanding miss
    assert mshr.stats.full_stalls == 1
    assert mshr.stats.stall_cycles == 290


def test_entries_expire_when_complete():
    mshr = MSHRFile(entries=1)
    mshr.allocate(0x100, 0)
    mshr.complete(0x100, 100)
    assert mshr.occupancy(50) == 1
    assert mshr.occupancy(100) == 0
    start, merged = mshr.allocate(0x200, 150)
    assert (start, merged) == (150, False)


def test_pending_ready_none_after_expiry():
    mshr = MSHRFile(entries=2)
    mshr.allocate(0x100, 0)
    mshr.complete(0x100, 100)
    assert mshr.pending_ready(0x100, 99) == 100
    assert mshr.pending_ready(0x100, 100) is None


def test_peak_occupancy_tracked():
    mshr = MSHRFile(entries=4)
    for index in range(3):
        line = 0x100 * (index + 1)
        mshr.allocate(line, 0)
        mshr.complete(line, 500)
    assert mshr.stats.peak_occupancy == 3


def test_idle_at_probe():
    mshr = MSHRFile(entries=2)
    assert mshr.idle_at(0)
    mshr.allocate(0x100, 0)
    mshr.complete(0x100, 100)
    assert not mshr.idle_at(50)
    assert mshr.idle_at(100)  # fill landed
    assert mshr.idle_at(200)


def test_next_completion_cycle_tracks_earliest_fill():
    mshr = MSHRFile(entries=4)
    assert mshr.next_completion_cycle() is None
    mshr.allocate(0x100, 0)
    mshr.complete(0x100, 300)
    mshr.allocate(0x200, 0)
    mshr.complete(0x200, 120)
    assert mshr.next_completion_cycle() == 120
    # Passing the clock retires completed fills first.
    assert mshr.next_completion_cycle(120) == 300
    assert mshr.next_completion_cycle(300) is None
