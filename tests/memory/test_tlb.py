"""Data TLB model and its hierarchy integration."""

import pytest

from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    TLBConfig,
)
from repro.errors import ConfigError
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import TLB


def test_config_validation():
    with pytest.raises(ConfigError):
        TLBConfig(entries=0)
    with pytest.raises(ConfigError):
        TLBConfig(page_bytes=100)
    with pytest.raises(ConfigError):
        TLBConfig(walk_latency=0)


def test_hit_after_install():
    tlb = TLB(TLBConfig(entries=4, page_bytes=4096))
    assert not tlb.access(0x1000)
    assert tlb.access(0x1008)  # same page
    assert tlb.access(0x1FF8)
    assert not tlb.access(0x2000)  # next page


def test_lru_eviction():
    tlb = TLB(TLBConfig(entries=2, page_bytes=4096))
    tlb.access(0x0000)
    tlb.access(0x1000)
    tlb.access(0x0000)  # refresh page 0
    tlb.access(0x2000)  # evicts page 1
    assert tlb.contains(0x0000)
    assert not tlb.contains(0x1000)
    assert tlb.occupancy == 2


def test_miss_rate():
    tlb = TLB(TLBConfig(entries=8, page_bytes=4096))
    tlb.access(0x0000)
    tlb.access(0x0008)
    assert tlb.stats.miss_rate == pytest.approx(0.5)


def _hierarchy(tlb_config):
    return MemoryHierarchy(HierarchyConfig(
        l1d=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=2),
        l1i=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=1),
        l2=CacheConfig(size_bytes=32 * 1024, assoc=4, hit_latency=10),
        dram=DRAMConfig(latency=100, min_interval=0),
        tlb=tlb_config,
    ))


def test_hierarchy_charges_walk_latency():
    walk = 50
    with_tlb = _hierarchy(TLBConfig(entries=4, walk_latency=walk))
    without = _hierarchy(None)
    slow = with_tlb.data_access(0x10000, cycle=0)
    fast = without.data_access(0x10000, cycle=0)
    assert slow.tlb_miss
    assert not fast.tlb_miss
    assert slow.ready_cycle == fast.ready_cycle + walk


def test_hierarchy_tlb_hit_costs_nothing():
    hierarchy = _hierarchy(TLBConfig(entries=4, walk_latency=50))
    hierarchy.data_access(0x10000, cycle=0)
    again = hierarchy.data_access(0x10008, cycle=1000)
    assert not again.tlb_miss
    assert again.ready_cycle == 1002  # plain L1 hit


def test_prefetch_warms_tlb():
    hierarchy = _hierarchy(TLBConfig(entries=4, walk_latency=50))
    hierarchy.prefetch(0x10000, cycle=0)
    result = hierarchy.data_access(0x10008, cycle=1000)
    assert not result.tlb_miss


# A third load that hits the L1 but misses a 1-entry TLB: with
# defer_on_tlb_miss it opens a third episode, without it only the two
# cold DRAM misses do.
_TLB_EPISODE_SOURCE = """
    movi r1, 0x100000
    movi r2, 0x200000
    ld   r3, 0(r1)     ; episode 1: cold DRAM miss
    membar             ; drain back to normal mode
    ld   r4, 0(r2)     ; episode 2: cold miss, evicts r1's TLB entry
    membar
    ld   r5, 0(r1)     ; L1 hit, but the translation must walk again
    addi r6, r5, 1
    halt
"""


def _run_tlb_episodes(defer_on_tlb: bool) -> int:
    from repro.config import DeferTrigger, SSTConfig
    from repro.core import SSTCore
    from repro.isa.assembler import assemble
    from repro.sim.runner import verify_against_golden

    program = assemble(_TLB_EPISODE_SOURCE)
    hierarchy = _hierarchy(TLBConfig(entries=1, page_bytes=4096,
                                     walk_latency=50))
    core = SSTCore(program, hierarchy, SSTConfig(
        defer_trigger=DeferTrigger.L2_MISS,
        defer_on_tlb_miss=defer_on_tlb,
    ))
    result = core.run()
    verify_against_golden(result, program)
    return result.extra["sst"].episodes


def test_sst_defers_on_tlb_miss_even_on_cache_hit():
    assert _run_tlb_episodes(defer_on_tlb=True) == 3


def test_defer_on_tlb_can_be_disabled():
    assert _run_tlb_episodes(defer_on_tlb=False) == 2
