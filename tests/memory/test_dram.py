"""DRAM latency + bandwidth token bucket."""

from repro.config import DRAMConfig
from repro.memory.dram import DRAMModel


def test_flat_latency():
    dram = DRAMModel(DRAMConfig(latency=300, min_interval=0))
    assert dram.access(10) == 310


def test_bandwidth_spacing():
    dram = DRAMModel(DRAMConfig(latency=100, min_interval=4))
    first = dram.access(0)
    second = dram.access(0)  # same cycle: must queue 4
    third = dram.access(0)
    assert first == 100
    assert second == 104
    assert third == 108
    assert dram.stats.queue_cycles == 4 + 8


def test_spaced_requests_do_not_queue():
    dram = DRAMModel(DRAMConfig(latency=100, min_interval=4))
    dram.access(0)
    assert dram.access(10) == 110
    assert dram.stats.queue_cycles == 0


def test_zero_interval_means_unlimited():
    dram = DRAMModel(DRAMConfig(latency=100, min_interval=0))
    for _ in range(5):
        assert dram.access(0) == 100


def test_access_count_and_busy():
    dram = DRAMModel(DRAMConfig(latency=50, min_interval=1))
    dram.access(0)
    dram.access(0)
    assert dram.stats.accesses == 2
    assert dram.stats.busy_until == 51
