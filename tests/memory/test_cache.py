"""Cache tag-store behaviour: hits, LRU, eviction, dirty writebacks."""

import pytest

from repro.config import CacheConfig
from repro.errors import ConfigError, SimulatorInvariantError
from repro.memory.cache import Cache


def tiny_cache(assoc=2, sets=2, line=64):
    return Cache(CacheConfig(size_bytes=assoc * sets * line, assoc=assoc,
                             line_bytes=line), name="test")


def test_cold_miss_then_hit():
    cache = tiny_cache()
    assert not cache.lookup(0)
    cache.fill(0)
    assert cache.lookup(0)
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1


def test_same_line_offsets_hit():
    cache = tiny_cache()
    cache.fill(0)
    assert cache.lookup(8)
    assert cache.lookup(56)


def test_lru_eviction_order():
    cache = tiny_cache(assoc=2, sets=1)
    cache.fill(0x000)
    cache.fill(0x040)
    cache.lookup(0x000)  # make line 0 MRU
    cache.fill(0x080)  # evicts 0x040
    assert cache.contains(0x000)
    assert not cache.contains(0x040)
    assert cache.contains(0x080)


def test_dirty_eviction_reports_writeback():
    cache = tiny_cache(assoc=1, sets=1)
    cache.fill(0x000)
    cache.mark_dirty(0x000)
    victim = cache.fill(0x040)
    assert victim == 0x000
    assert cache.stats.writebacks == 1


def test_clean_eviction_reports_none():
    cache = tiny_cache(assoc=1, sets=1)
    cache.fill(0x000)
    assert cache.fill(0x040) is None
    assert cache.stats.evictions == 1


def test_mark_dirty_absent_line_is_a_bug():
    cache = tiny_cache()
    with pytest.raises(SimulatorInvariantError):
        cache.mark_dirty(0x1000)


def test_set_mapping_separates_lines():
    cache = tiny_cache(assoc=1, sets=2)
    cache.fill(0x000)  # set 0
    cache.fill(0x040)  # set 1
    assert cache.contains(0x000) and cache.contains(0x040)


def test_refill_present_line_is_lru_refresh_not_eviction():
    cache = tiny_cache(assoc=2, sets=1)
    cache.fill(0x000)
    cache.fill(0x040)
    cache.fill(0x000)  # refresh
    cache.fill(0x080)  # should evict 0x040 (LRU), not 0x000
    assert cache.contains(0x000)


def test_prefetch_fill_counted_and_hit_tracked():
    cache = tiny_cache()
    cache.fill(0x000, prefetched=True)
    assert cache.stats.prefetch_fills == 1
    cache.lookup(0x000)
    assert cache.stats.prefetch_hits == 1
    cache.lookup(0x000)  # second demand hit no longer counts
    assert cache.stats.prefetch_hits == 1


def test_invalidate():
    cache = tiny_cache()
    cache.fill(0x000)
    cache.invalidate(0x000)
    assert not cache.contains(0x000)


def test_invariants_hold_after_traffic():
    cache = tiny_cache(assoc=2, sets=2)
    for addr in range(0, 0x1000, 64):
        cache.lookup(addr)
        cache.fill(addr)
    cache.check_invariants()


def test_miss_rate():
    cache = tiny_cache()
    cache.lookup(0)
    cache.fill(0)
    cache.lookup(0)
    assert cache.stats.miss_rate == pytest.approx(0.5)


def test_config_validation():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=100, assoc=3, line_bytes=64)
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=4096, assoc=1, line_bytes=48)
