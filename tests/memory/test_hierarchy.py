"""Assembled hierarchy timing: hit/miss levels, merges, MLP, prefetch,
ifetch."""

import pytest

from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    PrefetcherConfig,
    PrefetcherKind,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessType, HitLevel


def make_hierarchy(latency=300, interval=0, mshr=8, prefetcher=None):
    return MemoryHierarchy(HierarchyConfig(
        l1d=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=2,
                        mshr_entries=mshr),
        l1i=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=32 * 1024, assoc=4, hit_latency=10,
                       mshr_entries=16),
        dram=DRAMConfig(latency=latency, min_interval=interval),
        l2_prefetcher=prefetcher or PrefetcherConfig(),
    ))


def test_cold_miss_goes_to_dram():
    hierarchy = make_hierarchy()
    result = hierarchy.data_access(0x10000, cycle=0)
    assert result.level is HitLevel.DRAM
    assert result.went_to_dram
    # l1 lookup (2) + miss detect -> l2 probe, l2 tag (10) + dram (300)
    assert result.ready_cycle == 2 + 10 + 300


def test_second_access_hits_l1():
    hierarchy = make_hierarchy()
    hierarchy.data_access(0x10000, cycle=0)
    result = hierarchy.data_access(0x10008, cycle=1000)
    assert result.level is HitLevel.L1
    assert result.ready_cycle == 1002


def test_access_during_fill_merges():
    hierarchy = make_hierarchy()
    first = hierarchy.data_access(0x10000, cycle=0)
    merged = hierarchy.data_access(0x10008, cycle=5)
    assert merged.level is HitLevel.MERGE_L2
    assert merged.ready_cycle == first.ready_cycle
    assert merged.went_to_dram


def test_l2_hit_after_l1_eviction():
    hierarchy = make_hierarchy()
    hierarchy.data_access(0x10000, cycle=0)
    # Thrash the L1 set of 0x10000 (L1 has 32 sets of 64B lines; same
    # set lines are 2KB apart for assoc=2).
    hierarchy.data_access(0x10000 + 2048, cycle=1000)
    hierarchy.data_access(0x10000 + 4096, cycle=2000)
    result = hierarchy.data_access(0x10000, cycle=3000)
    assert result.level is HitLevel.L2


def test_independent_misses_overlap():
    hierarchy = make_hierarchy(mshr=8)
    first = hierarchy.data_access(0x10000, cycle=0)
    second = hierarchy.data_access(0x20000, cycle=1)
    # Both outstanding simultaneously: second finishes ~1 cycle later,
    # not a full latency later.
    assert second.ready_cycle - first.ready_cycle <= 10


def test_mshr_limit_serialises():
    hierarchy = make_hierarchy(mshr=1)
    first = hierarchy.data_access(0x10000, cycle=0)
    second = hierarchy.data_access(0x20000, cycle=1)
    assert second.ready_cycle >= first.ready_cycle + 300


def test_store_marks_line_dirty_and_counts():
    hierarchy = make_hierarchy()
    hierarchy.data_access(0x10000, cycle=0, access_type=AccessType.STORE)
    assert hierarchy.l1d.stats.misses == 1


def test_prefetch_warms_without_demand_stats():
    hierarchy = make_hierarchy()
    hierarchy.prefetch(0x10000, cycle=0)
    demand = hierarchy.stats.demand_accesses
    assert demand == 0
    result = hierarchy.data_access(0x10000, cycle=1000)
    assert result.level is HitLevel.L1


def test_prefetch_of_inflight_line_reports_pending_time():
    hierarchy = make_hierarchy()
    first = hierarchy.data_access(0x10000, cycle=0)
    again = hierarchy.prefetch(0x10008, cycle=3)
    assert again.ready_cycle == first.ready_cycle


def test_l2_prefetcher_fills_next_lines():
    hierarchy = make_hierarchy(
        prefetcher=PrefetcherConfig(kind=PrefetcherKind.NEXT_LINE, degree=1)
    )
    hierarchy.data_access(0x10000, cycle=0)
    assert hierarchy.l2.contains(0x10040)
    assert hierarchy.l2.stats.prefetch_fills == 1


def test_ifetch_uses_l1i_and_shares_l2():
    hierarchy = make_hierarchy()
    first = hierarchy.ifetch(0, cycle=0)
    assert first.level is HitLevel.DRAM
    hit = hierarchy.ifetch(1, cycle=1000)  # same line (4B/inst, 64B line)
    assert hit.level is HitLevel.L1
    assert hierarchy.stats.ifetches == 2


def test_dram_bandwidth_queues_bursts():
    hierarchy = make_hierarchy(interval=8)
    results = [
        hierarchy.data_access(0x10000 + 0x1000 * index, cycle=0)
        for index in range(4)
    ]
    readies = [result.ready_cycle for result in results]
    assert readies == sorted(readies)
    assert readies[-1] - readies[0] >= 3 * 8


def test_stats_classification():
    # Access times are non-decreasing, matching the cores' contract.
    hierarchy = make_hierarchy()
    hierarchy.data_access(0x10000, cycle=0)  # dram
    hierarchy.data_access(0x10008, cycle=5)  # merge into the fill
    hierarchy.data_access(0x10000, cycle=1000)  # l1 hit
    stats = hierarchy.stats
    assert stats.demand_accesses == 3
    assert stats.demand_dram == 1
    assert stats.demand_l1_hits == 1
    assert stats.demand_merges == 1
    assert stats.dram_fraction == pytest.approx(1 / 3)


def test_check_invariants_after_traffic():
    hierarchy = make_hierarchy()
    for index in range(200):
        hierarchy.data_access(0x1000 * index, cycle=index * 10)
    hierarchy.check_invariants()


def test_next_completion_cycle_across_mshr_files():
    hierarchy = make_hierarchy()
    assert hierarchy.next_completion_cycle() is None
    first = hierarchy.data_access(0x10000, cycle=0)
    second = hierarchy.data_access(0x20000, cycle=0)
    earliest = min(first.ready_cycle, second.ready_cycle)
    assert hierarchy.next_completion_cycle(0) == earliest
    assert (hierarchy.next_completion_cycle(max(first.ready_cycle,
                                                second.ready_cycle))
            is None)
