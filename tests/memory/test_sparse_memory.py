import pytest

from repro.errors import ExecutionError
from repro.isa.program import DataWord
from repro.memory.sparse_memory import SparseMemory


def test_unwritten_reads_zero():
    assert SparseMemory().read(0x1000) == 0


def test_write_read_roundtrip():
    memory = SparseMemory()
    memory.write(0x10, 42)
    assert memory.read(0x10) == 42


def test_values_masked_to_64_bits():
    memory = SparseMemory()
    memory.write(0, -1)
    assert memory.read(0) == 2**64 - 1
    memory.write(8, 1 << 64)
    assert memory.read(8) == 0


def test_misaligned_access_raises():
    memory = SparseMemory()
    with pytest.raises(ExecutionError, match="misaligned"):
        memory.read(3)
    with pytest.raises(ExecutionError, match="misaligned"):
        memory.write(12, 1)


def test_out_of_range_address_raises():
    with pytest.raises(ExecutionError, match="out of range"):
        SparseMemory().read(1 << 64)


def test_load_image():
    memory = SparseMemory()
    memory.load_image([DataWord(0x100, 7), DataWord(0x108, 8)])
    assert memory.read(0x100) == 7
    assert memory.read(0x108) == 8


def test_equality_ignores_explicit_zeros():
    a, b = SparseMemory(), SparseMemory()
    a.write(0x20, 0)
    assert a == b
    a.write(0x20, 5)
    assert a != b


def test_snapshot_is_a_copy():
    memory = SparseMemory()
    memory.write(0, 1)
    snap = memory.snapshot()
    memory.write(0, 2)
    assert snap[0] == 1


def test_unhashable():
    with pytest.raises(TypeError):
        hash(SparseMemory())
