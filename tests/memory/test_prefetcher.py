"""Prefetcher suggestion logic."""

from repro.config import PrefetcherConfig, PrefetcherKind
from repro.memory.prefetcher import (
    NextLinePrefetcher,
    NullPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)


def test_null_suggests_nothing():
    pf = NullPrefetcher(PrefetcherConfig(), 64)
    assert pf.on_miss(0, 0x1000) == []


def test_next_line_degree():
    pf = NextLinePrefetcher(
        PrefetcherConfig(kind=PrefetcherKind.NEXT_LINE, degree=2), 64
    )
    assert pf.on_miss(0, 0x1008) == [0x1040, 0x1080]
    assert pf.stats.issued == 2


def test_stride_learns_after_two_confirmations():
    pf = StridePrefetcher(
        PrefetcherConfig(kind=PrefetcherKind.STRIDE, degree=1), 64
    )
    assert pf.on_miss(5, 0x1000) == []  # first sighting
    assert pf.on_miss(5, 0x1100) == []  # stride learned, not confirmed
    assert pf.on_miss(5, 0x1200) == [0x1300]  # confirmed


def test_stride_resets_on_change():
    pf = StridePrefetcher(
        PrefetcherConfig(kind=PrefetcherKind.STRIDE, degree=1), 64
    )
    pf.on_miss(5, 0x1000)
    pf.on_miss(5, 0x1100)
    pf.on_miss(5, 0x1200)
    assert pf.on_miss(5, 0x5000) == []  # stride broke


def test_stride_table_evicts_lru():
    pf = StridePrefetcher(
        PrefetcherConfig(kind=PrefetcherKind.STRIDE, degree=1,
                         table_entries=2), 64
    )
    for pc in range(4):
        pf.on_miss(pc, 0x1000)
    # Oldest PCs evicted; re-observing them restarts learning.
    assert pf.on_miss(0, 0x2000) == []


def test_factory_dispatch():
    assert isinstance(
        make_prefetcher(PrefetcherConfig(kind=PrefetcherKind.NONE), 64),
        NullPrefetcher,
    )
    assert isinstance(
        make_prefetcher(PrefetcherConfig(kind=PrefetcherKind.NEXT_LINE), 64),
        NextLinePrefetcher,
    )
    assert isinstance(
        make_prefetcher(PrefetcherConfig(kind=PrefetcherKind.STRIDE), 64),
        StridePrefetcher,
    )
