"""Area model and bandwidth-capped chip throughput."""

import pytest

from repro.config import (
    InOrderConfig,
    OoOConfig,
    SSTConfig,
    inorder_machine,
    sst_machine,
)
from repro.power import chip_throughput, core_area, cores_per_die
from repro.power.cmp import measured_bandwidth
from repro.sim.runner import simulate
from repro.workloads import hash_join, matrix_multiply
from tests.conftest import small_hierarchy_config


def test_area_ordering():
    """inorder < SST << OoO — the paper's area claim."""
    inorder = core_area(InOrderConfig(width=2))
    sst = core_area(SSTConfig(width=2))
    ooo = core_area(OoOConfig(rob_size=128, iq_size=42, lsq_size=42))
    assert inorder < sst < ooo
    assert sst < inorder * 1.8  # SST is a modest adder
    assert ooo > inorder * 2.0  # OoO is not


def test_area_scales_with_structures():
    small = core_area(SSTConfig(dq_size=16, sb_size=8))
    big = core_area(SSTConfig(dq_size=128, sb_size=64))
    assert big > small
    assert core_area(OoOConfig(rob_size=32, iq_size=16, lsq_size=16)) \
        < core_area(OoOConfig(rob_size=256, iq_size=80, lsq_size=80))


def test_core_area_rejects_unknown():
    with pytest.raises(TypeError):
        core_area(object())


def test_cores_per_die():
    config = InOrderConfig(width=2)
    area = core_area(config)
    assert cores_per_die(config, die_budget=10 * area) == 10
    with pytest.raises(ValueError):
        cores_per_die(config, die_budget=0)


def test_measured_bandwidth_higher_for_miss_bound():
    hierarchy = small_hierarchy_config()
    missy = simulate(inorder_machine(hierarchy),
                     hash_join(table_words=1 << 12, probes=256))
    cachey = simulate(inorder_machine(hierarchy), matrix_multiply(n=8))
    assert measured_bandwidth(missy) > measured_bandwidth(cachey)


def test_chip_throughput_scales_then_saturates():
    hierarchy = small_hierarchy_config()
    result = simulate(sst_machine(hierarchy),
                      hash_join(table_words=1 << 12, probes=256))
    bandwidth = measured_bandwidth(result)
    assert bandwidth > 0
    limit = bandwidth * 4  # channel feeds exactly four cores
    four = chip_throughput(result, cores=4, chip_bw_limit=limit)
    eight = chip_throughput(result, cores=8, chip_bw_limit=limit)
    assert not four.bandwidth_bound
    assert eight.bandwidth_bound
    assert four.throughput == pytest.approx(4 * result.ipc)
    assert eight.throughput == pytest.approx(four.throughput)


def test_chip_throughput_validation():
    hierarchy = small_hierarchy_config()
    result = simulate(inorder_machine(hierarchy), matrix_multiply(n=4))
    with pytest.raises(ValueError):
        chip_throughput(result, cores=0, chip_bw_limit=1.0)
    with pytest.raises(ValueError):
        chip_throughput(result, cores=1, chip_bw_limit=0.0)
