"""Energy accounting over real runs."""

import pytest

from repro.config import inorder_machine, ooo_machine, sst_machine
from repro.power import EnergyWeights, estimate_energy
from repro.sim.runner import simulate
from repro.workloads import hash_join
from tests.conftest import small_hierarchy_config


@pytest.fixture(scope="module")
def results():
    program = hash_join(table_words=1 << 10, probes=128)
    hierarchy = small_hierarchy_config()
    return {
        name: simulate(machine, program)
        for name, machine in (
            ("inorder", inorder_machine(hierarchy)),
            ("sst", sst_machine(hierarchy)),
            ("ooo", ooo_machine(hierarchy, rob_size=128)),
        )
    }


def test_components_present_per_core_kind(results):
    inorder = estimate_energy(results["inorder"])
    assert "rename" not in inorder.components
    assert "checkpoints" not in inorder.components
    ooo = estimate_energy(results["ooo"])
    assert {"rename", "rob", "issue_queue", "lsq"} <= set(ooo.components)
    sst = estimate_energy(results["sst"])
    assert {"checkpoints", "deferred_queue", "store_buffer"} \
        <= set(sst.components)


def test_totals_positive_and_consistent(results):
    for result in results.values():
        breakdown = estimate_energy(result)
        assert breakdown.total > 0
        assert breakdown.total == pytest.approx(
            sum(breakdown.components.values())
        )
        assert breakdown.energy_per_instruction > 0


def test_ooo_structures_cost_more_per_instruction(results):
    """The paper's power claim: the OoO machinery dominates the SST
    additions, per committed instruction."""
    ooo = estimate_energy(results["ooo"])
    sst = estimate_energy(results["sst"])
    ooo_overhead = sum(ooo.components[k]
                       for k in ("rename", "rob", "issue_queue", "lsq"))
    sst_overhead = sum(sst.components[k]
                       for k in ("checkpoints", "deferred_queue",
                                 "store_buffer", "na_bits"))
    assert (ooo_overhead / ooo.instructions
            > sst_overhead / sst.instructions)


def test_discarded_work_is_charged(results):
    """SST pays energy for issued-then-discarded instructions."""
    sst = estimate_energy(results["sst"])
    stats = results["sst"].extra["sst"]
    issued = stats.normal_insts + stats.ahead_insts + stats.replay_insts
    assert issued >= results["sst"].instructions
    weights = EnergyWeights()
    expected_pipeline = issued * (weights.fetch_decode + weights.alu_op
                                  + 3 * weights.regfile_access)
    assert sst.components["pipeline"] == pytest.approx(expected_pipeline)


def test_ed2_ordering_on_memory_bound_code(results):
    """SST finishes much faster at modest extra power: ED² must beat
    the in-order core on the miss-bound probe loop."""
    inorder = estimate_energy(results["inorder"])
    sst = estimate_energy(results["sst"])
    assert sst.energy_delay_squared < inorder.energy_delay_squared


def test_custom_weights_scale_components(results):
    heavy_dram = EnergyWeights(dram_access=1000.0)
    base = estimate_energy(results["inorder"])
    heavy = estimate_energy(results["inorder"], weights=heavy_dram)
    assert heavy.components["dram"] > base.components["dram"]
