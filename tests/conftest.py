"""Shared fixtures: small hierarchies that miss quickly, machine
factories, and tiny hand-written programs."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    DRAMConfig,
    HierarchyConfig,
    SSTConfig,
)
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy


def small_hierarchy_config(latency: int = 200,
                           mshr: int = 16) -> HierarchyConfig:
    """Small caches so tiny test programs actually miss."""
    return HierarchyConfig(
        l1d=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=2,
                        mshr_entries=mshr),
        l1i=CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=1,
                        mshr_entries=4),
        l2=CacheConfig(size_bytes=32 * 1024, assoc=4, hit_latency=12,
                       mshr_entries=max(16, mshr)),
        dram=DRAMConfig(latency=latency, min_interval=2),
    )


@pytest.fixture
def small_hierarchy():
    return small_hierarchy_config()


@pytest.fixture
def hierarchy(small_hierarchy):
    return MemoryHierarchy(small_hierarchy)


@pytest.fixture
def sst_config():
    return SSTConfig(width=2, checkpoints=2, dq_size=32, sb_size=16)


COUNTDOWN_ASM = """
    movi r1, 10
    movi r2, 0
loop:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


@pytest.fixture
def countdown_program():
    return assemble(COUNTDOWN_ASM, name="countdown")


MISS_CHAIN_ASM = """
    .data 0x100000: 0x100040
    .data 0x100040: 0x100080
    .data 0x100080: 7
    movi r1, 0x100000
    ld   r2, 0(r1)      ; miss
    ld   r3, 0(r2)      ; dependent miss
    ld   r4, 0(r3)      ; dependent miss
    addi r5, r4, 1
    halt
"""


@pytest.fixture
def miss_chain_program():
    return assemble(MISS_CHAIN_ASM, name="miss-chain")
